package llmservingsim

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// TrafficClass describes one class of a mixed workload for cluster
// simulation: a named length distribution, an arrival rate, and
// optional per-request SLO targets that drive goodput accounting.
type TrafficClass struct {
	Name string

	// Dist selects the length distribution: "sharegpt", "alpaca", or
	// "fixed-IN-OUT" (e.g. "fixed-512-128").
	Dist string

	// RatePerSec is the class's mean Poisson arrival rate.
	RatePerSec float64

	// SLO targets; zero means "no target" (always attained).
	TTFT time.Duration // time to first token
	TPOT time.Duration // time per output token after the first
}

func (tc TrafficClass) internal() (workload.Class, error) {
	dist, err := workload.ParseDist(tc.Dist)
	if err != nil {
		return workload.Class{}, err
	}
	c := workload.Class{
		Name: tc.Name,
		Dist: dist,
		Rate: tc.RatePerSec,
		TTFT: simtime.FromStd(tc.TTFT),
		TPOT: simtime.FromStd(tc.TPOT),
	}
	return c, c.Validate()
}

// Ramp scales arrival rates over simulated time: the rate multiplier
// moves linearly from From at trace start to To at the end of the Over
// window and holds there. The zero value is the identity ramp. Ramps
// turn one trace into a saturation scan from under- to over-load.
type Ramp struct {
	From, To float64
	Over     time.Duration // 0 = the trace's expected span
}

func (r Ramp) internal() workload.Ramp {
	return workload.Ramp{From: r.From, To: r.To, Over: simtime.FromStd(r.Over)}
}

// MultiClassTrace synthesises n requests mixing the given traffic
// classes: a merged Poisson arrival process at the sum of the class
// rates (scaled by the ramp), each request tagged with its class name.
// Deterministic for a given (classes, n, ramp, seed).
func MultiClassTrace(classes []TrafficClass, n int, ramp Ramp, seed int64) ([]Request, error) {
	wc, err := internalClasses(classes)
	if err != nil {
		return nil, err
	}
	reqs, err := workload.MultiClassTrace(wc, n, ramp.internal(), seed)
	if err != nil {
		return nil, err
	}
	return fromWorkload(reqs), nil
}

func internalClasses(classes []TrafficClass) ([]workload.Class, error) {
	out := make([]workload.Class, len(classes))
	seen := make(map[string]bool, len(classes))
	for i, tc := range classes {
		c, err := tc.internal()
		if err != nil {
			return nil, err
		}
		// Duplicate names would silently collapse into one SLO map
		// entry; reject them here like MultiClassTrace does.
		if seen[c.Name] {
			return nil, fmt.Errorf("llmservingsim: duplicate traffic class %q", c.Name)
		}
		seen[c.Name] = true
		out[i] = c
	}
	return out, nil
}

// ParseTrafficClasses converts a comma-separated list of class specs of
// the form "name:dist:rate[:ttft_ms[:tpot_ms]]" — the grammar shared by
// the llmservingsim and tracegen CLIs. Example:
// "chat:sharegpt:3:1000:80,api:alpaca:9:500:50".
func ParseTrafficClasses(spec string) ([]TrafficClass, error) {
	wcs, err := workload.ParseClasses(spec)
	if err != nil {
		return nil, err
	}
	out := make([]TrafficClass, len(wcs))
	for i, wc := range wcs {
		out[i] = TrafficClass{
			Name:       wc.Name,
			Dist:       wc.Dist.Name,
			RatePerSec: wc.Rate,
			TTFT:       wc.TTFT.Std(),
			TPOT:       wc.TPOT.Std(),
		}
	}
	return out, nil
}

// ParseRamp converts a ramp spec "from:to[:over_s]", e.g. "0.5:2:60".
func ParseRamp(spec string) (Ramp, error) {
	wr, err := workload.ParseRamp(spec)
	if err != nil {
		return Ramp{}, err
	}
	return Ramp{From: wr.From, To: wr.To, Over: wr.Over.Std()}, nil
}

// ClusterScenario is a multi-replica serving simulation: one arrival
// stream fanned out over Replicas identical simulator instances through
// an admission gate and a routing policy. Scenarios run standalone via
// Run, or alongside single-instance Scenarios inside a Sweep.
type ClusterScenario struct {
	Name string

	// Config parameterises each replica (model, NPUs, scheduling, ...).
	// Without a Fleet, replicas are homogeneous copies of it; with one,
	// it is the base each ReplicaSpec overlays.
	Config Config

	// Replicas is the serving instance count (>= 1). With a Fleet it
	// may be left 0 (it is derived as the fleet total) or must match
	// that total.
	Replicas int

	// Fleet, when non-empty, makes the cluster heterogeneous: each
	// ReplicaSpec contributes Count replicas serving its model on its
	// hardware under its performance-model backend, in spec order. See
	// ParseFleet for the CLI grammar.
	Fleet []ReplicaSpec

	Router    RouterPolicy
	Admission AdmissionPolicy

	// AdmissionLimit bounds the admission policy: queued requests per
	// replica for AdmitQueueCap, total in-flight cluster tokens for
	// AdmitTokenBudget. Ignored by AdmitAll.
	AdmissionLimit int64

	// Classes supplies per-class SLO targets (matched to Request.Class
	// by name). Classes are optional: requests of unknown or empty
	// class get no SLO and always attain.
	Classes []TrafficClass

	// Trace is the arrival stream, typically from MultiClassTrace or
	// LoadTrace. Requests are processed in arrival order.
	Trace []Request
}

// WithReplicaSpecs returns a copy of the scenario serving the given
// heterogeneous fleet (see ReplicaSpec and ParseFleet); the replica
// count is derived from the specs.
func (sc ClusterScenario) WithReplicaSpecs(specs ...ReplicaSpec) ClusterScenario {
	sc.Fleet = specs
	sc.Replicas = FleetReplicas(specs)
	return sc
}

// Validate checks the scenario without building it.
func (sc ClusterScenario) Validate() error {
	if len(sc.Fleet) > 0 {
		for _, rs := range sc.Fleet {
			if err := rs.Validate(); err != nil {
				return err
			}
		}
		total := FleetReplicas(sc.Fleet)
		if total > MaxFleetReplicas {
			return &ConfigError{Field: "Fleet", Value: total,
				Reason: fmt.Sprintf("fleet total exceeds the %d replica maximum", MaxFleetReplicas)}
		}
		if sc.Replicas != 0 && sc.Replicas != total {
			return &ConfigError{Field: "Replicas", Value: sc.Replicas,
				Reason: fmt.Sprintf("does not match the fleet's %d replicas (leave 0 to derive)", total)}
		}
	} else if sc.Replicas < 1 {
		return &ConfigError{Field: "Replicas", Value: sc.Replicas, Reason: "must be >= 1"}
	}
	if !sc.Router.valid() {
		return &ConfigError{Field: "Router", Value: sc.Router, Reason: "unknown router policy"}
	}
	if !sc.Admission.valid() {
		return &ConfigError{Field: "Admission", Value: sc.Admission, Reason: "unknown admission policy"}
	}
	if len(sc.Trace) == 0 {
		return &ConfigError{Field: "Trace", Value: len(sc.Trace), Reason: "cluster scenario needs a trace"}
	}
	if _, err := internalClasses(sc.Classes); err != nil {
		return &ConfigError{Field: "Classes", Value: len(sc.Classes), Reason: "invalid traffic class", Err: err}
	}
	// Replica configs are validated once per homogeneous group, not
	// once per replica.
	if len(sc.Fleet) == 0 {
		return sc.Config.Validate()
	}
	for _, rs := range sc.Fleet {
		if err := rs.apply(sc.Config).Validate(); err != nil {
			return err
		}
	}
	return nil
}

// build assembles the internal cluster.
func (sc ClusterScenario) build() (*cluster.Cluster, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	// One buildOptions call per homogeneous replica group; the list
	// then maps replica index -> options. Backend factories inside the
	// options build per-replica state, so sharing an Options value
	// across a group is safe.
	var optsList []core.Options
	if len(sc.Fleet) == 0 {
		opts, err := buildOptions(sc.Config)
		if err != nil {
			return nil, err
		}
		optsList = make([]core.Options, sc.Replicas)
		for i := range optsList {
			optsList[i] = opts
		}
	} else {
		optsList = make([]core.Options, 0, FleetReplicas(sc.Fleet))
		for _, rs := range sc.Fleet {
			opts, err := buildOptions(rs.apply(sc.Config))
			if err != nil {
				return nil, err
			}
			for i := 0; i < rs.Count; i++ {
				optsList = append(optsList, opts)
			}
		}
	}
	router, err := cluster.NewRouter(sc.Router.internal())
	if err != nil {
		return nil, err
	}
	admission, err := cluster.NewAdmission(sc.Admission.internal(), sc.AdmissionLimit)
	if err != nil {
		return nil, err
	}
	classes, err := internalClasses(sc.Classes)
	if err != nil {
		return nil, err
	}
	hook := sc.Config.OnIteration
	return cluster.New(cluster.Config{
		Replicas: len(optsList),
		NewReplica: func(i int) (*core.Simulator, error) {
			inner, err := core.New(optsList[i], nil)
			if err != nil {
				return nil, err
			}
			// Iteration indices are per replica; events from all
			// replicas interleave on the goroutine driving the cluster.
			attachIterationHook(inner, hook)
			return inner, nil
		},
		Router:    router,
		Admission: admission,
		Classes:   classes,
	})
}

// Run simulates the cluster scenario to completion.
func (sc ClusterScenario) Run() (*ClusterReport, error) {
	return sc.RunContext(context.Background())
}

// RunContext simulates the cluster scenario, checking ctx at arrival
// and iteration boundaries.
func (sc ClusterScenario) RunContext(ctx context.Context) (*ClusterReport, error) {
	c, err := sc.build()
	if err != nil {
		return nil, err
	}
	rep, err := c.RunContext(ctx, toWorkload(sc.Trace))
	if err != nil {
		return nil, err
	}
	out := wrapClusterReport(rep)
	out.Model = sc.fleetModel()
	if len(sc.Fleet) > 0 {
		out.Topology = fmt.Sprintf("fleet[%s] (%d-npu %s)", FleetString(sc.Fleet), sc.Config.NPUs, sc.Config.Parallelism)
	} else {
		out.Topology = fmt.Sprintf("%dx(%d-npu %s)", sc.Replicas, sc.Config.NPUs, sc.Config.Parallelism)
	}
	return out, nil
}

// fleetModel labels the models the scenario serves: the base model, or
// the distinct fleet models joined with '+' when specs override it.
func (sc ClusterScenario) fleetModel() string {
	if len(sc.Fleet) == 0 {
		return sc.Config.Model
	}
	var names []string
	seen := map[string]bool{}
	for _, rs := range sc.Fleet {
		name := rs.Model
		if name == "" {
			name = sc.Config.Model
		}
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	return strings.Join(names, "+")
}

// DistStats summarises one latency component's distribution in seconds
// (nearest-rank percentiles).
type DistStats struct {
	MeanSec, P50Sec, P95Sec, P99Sec float64
}

// ClassStats is one traffic class's outcome in a cluster run.
type ClassStats struct {
	Class string

	Requests    int // arrivals (admitted + rejected)
	Rejected    int // dropped at admission
	Completed   int // finished serving
	SLOAttained int // completed within both SLO targets

	TTFT    DistStats // time to first token, over completed requests
	TPOT    DistStats // time per output token, over multi-token requests
	Latency DistStats // end-to-end

	// GoodputTPS is the SLO-attained generation throughput in output
	// tokens/second; ThroughputTPS counts all completed output tokens.
	GoodputTPS    float64
	ThroughputTPS float64
}

// ReplicaStats summarises one replica's share of a cluster run.
type ReplicaStats struct {
	Index      int
	Backend    string // performance model pricing this replica
	Requests   int
	Iterations int
	SimEndSec  float64
	PromptTPS  float64
	GenTPS     float64
	Evictions  int64
	Reloads    int64
}

// ClusterReport is the outcome of a cluster scenario.
type ClusterReport struct {
	Model     string // per-replica model name
	Topology  string // e.g. "4x(16-npu hybrid)"
	Replicas  int
	Router    string
	Admission string

	Requests int
	Admitted int
	Rejected int

	SimEndSec float64

	// Latency aggregates all classes; Classes breaks the run down per
	// traffic class, ordered by name.
	Latency    LatencyStats
	Classes    []ClassStats
	PerReplica []ReplicaStats

	PromptTPS     float64
	ThroughputTPS float64 // completed output tokens/second
	GoodputTPS    float64 // SLO-attained output tokens/second

	inner *cluster.Report
}

func wrapClusterReport(rep *cluster.Report) *ClusterReport {
	out := &ClusterReport{
		Replicas:  rep.Replicas,
		Router:    rep.Router,
		Admission: rep.Admission,
		Requests:  rep.Requests,
		Admitted:  rep.Admitted,
		Rejected:  rep.Rejected,
		SimEndSec: rep.SimEnd.Seconds(),
		Latency: LatencyStats{
			Count:   rep.Latency.Count,
			MeanSec: rep.Latency.MeanSec,
			P50Sec:  rep.Latency.P50Sec,
			P95Sec:  rep.Latency.P95Sec,
			P99Sec:  rep.Latency.P99Sec,
			TTFTSec: rep.Latency.MeanTTFTSec,
			TPOTSec: rep.Latency.MeanTPOTSec,
		},
		PromptTPS:     rep.PromptTPS,
		ThroughputTPS: rep.ThroughputTPS,
		GoodputTPS:    rep.GoodputTPS,
		inner:         rep,
	}
	for _, cs := range rep.Classes {
		out.Classes = append(out.Classes, ClassStats{
			Class:         cs.Class,
			Requests:      cs.Requests,
			Rejected:      cs.Rejected,
			Completed:     cs.Completed,
			SLOAttained:   cs.SLOAttained,
			TTFT:          DistStats(cs.TTFT),
			TPOT:          DistStats(cs.TPOT),
			Latency:       DistStats(cs.Latency),
			GoodputTPS:    cs.GoodputTPS,
			ThroughputTPS: cs.ThroughputTPS,
		})
	}
	for _, p := range rep.PerReplica {
		out.PerReplica = append(out.PerReplica, ReplicaStats{
			Index:      p.Index,
			Backend:    p.Backend,
			Requests:   p.Requests,
			Iterations: p.Iterations,
			SimEndSec:  p.SimEnd.Seconds(),
			PromptTPS:  p.PromptTPS,
			GenTPS:     p.GenTPS,
			Evictions:  p.Evictions,
			Reloads:    p.Reloads,
		})
	}
	return out
}

// Class returns the named class's stats, or nil if absent.
func (r *ClusterReport) Class(name string) *ClassStats {
	for i := range r.Classes {
		if r.Classes[i].Class == name {
			return &r.Classes[i]
		}
	}
	return nil
}

// TotalIterations sums scheduler iterations across replicas.
func (r *ClusterReport) TotalIterations() int {
	n := 0
	for _, p := range r.PerReplica {
		n += p.Iterations
	}
	return n
}

// KVEvictions sums KV-cache evictions across replicas.
func (r *ClusterReport) KVEvictions() (evictions, reloads int64) {
	for _, p := range r.PerReplica {
		evictions += p.Evictions
		reloads += p.Reloads
	}
	return evictions, reloads
}

// WriteClassTSV writes the per-class summary table (*-classes.tsv).
func (r *ClusterReport) WriteClassTSV(w io.Writer) error { return r.inner.WriteClassTSV(w) }

// WriteRequestsTSV writes the per-request record table (*-requests.tsv).
func (r *ClusterReport) WriteRequestsTSV(w io.Writer) error { return r.inner.WriteRequestsTSV(w) }

// WriteReplicaTSV writes the per-replica placement table
// (*-replicas.tsv).
func (r *ClusterReport) WriteReplicaTSV(w io.Writer) error { return r.inner.WriteReplicaTSV(w) }

// Routers lists the available routing policies.
func Routers() []string { return cluster.Routers() }

// Admissions lists the available admission policies.
func Admissions() []string { return cluster.Admissions() }
