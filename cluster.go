package llmservingsim

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/simtime"
	"repro/internal/workload"
)

// TrafficClass describes one class of a mixed workload for cluster
// simulation: a named length distribution, an arrival rate, and
// optional per-request SLO targets that drive goodput accounting.
type TrafficClass struct {
	Name string

	// Dist selects the length distribution: "sharegpt", "alpaca", or
	// "fixed-IN-OUT" (e.g. "fixed-512-128").
	Dist string

	// RatePerSec is the class's mean Poisson arrival rate.
	RatePerSec float64

	// SLO targets; zero means "no target" (always attained).
	TTFT time.Duration // time to first token
	TPOT time.Duration // time per output token after the first

	// PrefixTokens is the class's shared system-prompt length: every
	// request carries these tokens ahead of its sampled input, identical
	// across the class — the traffic shape prefix caching and
	// prefix-affinity routing exploit. Zero means no shared prefix.
	PrefixTokens int
}

func (tc TrafficClass) internal() (workload.Class, error) {
	dist, err := workload.ParseDist(tc.Dist)
	if err != nil {
		return workload.Class{}, err
	}
	c := workload.Class{
		Name:      tc.Name,
		Dist:      dist,
		Rate:      tc.RatePerSec,
		TTFT:      simtime.FromStd(tc.TTFT),
		TPOT:      simtime.FromStd(tc.TPOT),
		PrefixLen: tc.PrefixTokens,
	}
	return c, c.Validate()
}

// Ramp scales arrival rates over simulated time: the rate multiplier
// moves linearly from From at trace start to To at the end of the Over
// window and holds there. The zero value is the identity ramp. Ramps
// turn one trace into a saturation scan from under- to over-load.
type Ramp struct {
	From, To float64
	Over     time.Duration // 0 = the trace's expected span
}

func (r Ramp) internal() workload.Ramp {
	return workload.Ramp{From: r.From, To: r.To, Over: simtime.FromStd(r.Over)}
}

// MultiClassTrace synthesises n requests mixing the given traffic
// classes: a merged Poisson arrival process at the sum of the class
// rates (scaled by the ramp), each request tagged with its class name.
// Deterministic for a given (classes, n, ramp, seed).
func MultiClassTrace(classes []TrafficClass, n int, ramp Ramp, seed int64) ([]Request, error) {
	wc, err := internalClasses(classes)
	if err != nil {
		return nil, err
	}
	reqs, err := workload.MultiClassTrace(wc, n, ramp.internal(), seed)
	if err != nil {
		return nil, err
	}
	return fromWorkload(reqs), nil
}

func internalClasses(classes []TrafficClass) ([]workload.Class, error) {
	out := make([]workload.Class, len(classes))
	seen := make(map[string]bool, len(classes))
	for i, tc := range classes {
		c, err := tc.internal()
		if err != nil {
			return nil, err
		}
		// Duplicate names would silently collapse into one SLO map
		// entry; reject them here like MultiClassTrace does.
		if seen[c.Name] {
			return nil, fmt.Errorf("llmservingsim: duplicate traffic class %q", c.Name)
		}
		seen[c.Name] = true
		out[i] = c
	}
	return out, nil
}

// ParseTrafficClasses converts a comma-separated list of class specs of
// the form "name:dist:rate[:ttft_ms[:tpot_ms[:prefix_toks]]]" — the
// grammar shared by the llmservingsim and tracegen CLIs. Example:
// "chat:sharegpt:3:1000:80,agent:alpaca:9:500:50:512".
func ParseTrafficClasses(spec string) ([]TrafficClass, error) {
	wcs, err := workload.ParseClasses(spec)
	if err != nil {
		return nil, err
	}
	out := make([]TrafficClass, len(wcs))
	for i, wc := range wcs {
		out[i] = TrafficClass{
			Name:         wc.Name,
			Dist:         wc.Dist.Name,
			RatePerSec:   wc.Rate,
			TTFT:         wc.TTFT.Std(),
			TPOT:         wc.TPOT.Std(),
			PrefixTokens: wc.PrefixLen,
		}
	}
	return out, nil
}

// ParseRamp converts a ramp spec "from:to[:over_s]", e.g. "0.5:2:60".
func ParseRamp(spec string) (Ramp, error) {
	wr, err := workload.ParseRamp(spec)
	if err != nil {
		return Ramp{}, err
	}
	return Ramp{From: wr.From, To: wr.To, Over: wr.Over.Std()}, nil
}

// ClusterScenario is a multi-replica serving simulation: one arrival
// stream fanned out over Replicas identical simulator instances through
// an admission gate and a routing policy. Scenarios run standalone via
// Run, or alongside single-instance Scenarios inside a Sweep.
type ClusterScenario struct {
	Name string

	// Config parameterises each replica (model, NPUs, scheduling, ...).
	// Without a Fleet, replicas are homogeneous copies of it; with one,
	// it is the base each ReplicaSpec overlays.
	Config Config

	// Replicas is the serving instance count (>= 1). With a Fleet it
	// may be left 0 (it is derived as the fleet total) or must match
	// that total.
	Replicas int

	// Fleet, when non-empty, makes the cluster heterogeneous: each
	// ReplicaSpec contributes Count replicas serving its model on its
	// hardware under its performance-model backend, in spec order. See
	// ParseFleet for the CLI grammar.
	//
	// Specs may also carry a Role (RolePrefill / RoleDecode), turning the
	// cluster into a disaggregated deployment: prefill replicas compute
	// each request's first token, then hand its KV cache to a decode
	// replica over the interconnect (priced through the network model)
	// where the remaining tokens generate. Roles must not mix with
	// unified specs, and both pools need at least one replica. See
	// WithDisaggregation for the common two-pool case.
	Fleet []ReplicaSpec

	Router    RouterPolicy
	Admission AdmissionPolicy

	// DecodeRouter places the decode stage of disaggregated requests
	// once their prefill completes (Router places the prefill stage).
	// The zero value is round-robin. Ignored by unified fleets.
	DecodeRouter RouterPolicy

	// AdmissionLimit bounds the admission policy: queued requests per
	// replica for AdmitQueueCap, total in-flight cluster tokens for
	// AdmitTokenBudget. Ignored by AdmitAll.
	AdmissionLimit int64

	// Classes supplies per-class SLO targets (matched to Request.Class
	// by name). Classes are optional: requests of unknown or empty
	// class get no SLO and always attain.
	Classes []TrafficClass

	// Trace is the arrival stream, typically from MultiClassTrace or
	// LoadTrace. Requests are processed in arrival order.
	Trace []Request

	// TraceStream is the pull-based alternative to Trace (exactly one of
	// the two must be set): requests are generated as the simulation
	// reaches them and never materialize as a slice. Streams are
	// consumed by a run, so a scenario holding one is single-use — in
	// particular it cannot ride in a Sweep next to repeated runs.
	TraceStream RequestStream

	// StreamMetrics folds each request's metrics into constant-size
	// accumulators at its terminal event instead of retaining a
	// per-request record table: report memory stays flat in the request
	// count, percentile fields (P50/P95/P99) come from a relative-error
	// sketch with a 2.5% guarantee, and counts, rates, and means stay
	// exact. The report's Records-dependent output (WriteRequestsTSV) is
	// empty; use RequestsOut to stream rows instead.
	StreamMetrics bool

	// RequestsOut, when non-nil, receives the per-request TSV table
	// (the WriteRequestsTSV format) row by row as requests reach their
	// terminal events — completion order, not ID order. This is how
	// streaming-metrics runs keep a per-request artifact without
	// retaining records.
	RequestsOut io.Writer

	// Shards fans the replica-stepping half of the simulation loop out
	// over this many worker goroutines (slot i belongs to shard i mod
	// Shards), with routing and admission kept on the coordinating
	// goroutine in arrival order. Results are byte-identical to the
	// sequential run. 0 or 1 means sequential; sharding requires a
	// static unified fleet (no disaggregation, autoscaling, fleet
	// events, telemetry, or RequestsOut).
	Shards int

	// Autoscaler makes the fleet dynamic: the policy re-evaluates the
	// fleet size every ScaleTick of simulated time, clamped to
	// [MinReplicas, MaxReplicas]. ScaleNone (the zero value) keeps the
	// fleet static. Autoscaled slots beyond the initial fleet cycle
	// through the initial replica configurations (round-robin over the
	// expanded Fleet, or copies of Config when homogeneous).
	Autoscaler AutoscalePolicy

	// ScaleTick is the autoscaler evaluation interval (> 0 when an
	// Autoscaler is selected).
	ScaleTick time.Duration

	// MinReplicas / MaxReplicas clamp scaling decisions (ticks and
	// scale events). Zero values default to 1 and max(initial replicas,
	// MinReplicas).
	MinReplicas int
	MaxReplicas int

	// Per-pool clamps for a disaggregated fleet's autoscaler (the
	// Autoscaler policy is instantiated once per pool: the prefill
	// instance reacts to TTFT attainment, the decode instance to TPOT
	// attainment). Zero values default to 1 and max(initial pool size,
	// min). Ignored by unified fleets, which use MinReplicas/MaxReplicas.
	PrefillMinReplicas int
	PrefillMaxReplicas int
	DecodeMinReplicas  int
	DecodeMaxReplicas  int

	// ScaleQueueTarget is the queue-depth policy's target queued
	// requests per active replica.
	ScaleQueueTarget int

	// ScaleSLOTarget / ScaleSLOHigh bound the slo-target policy's
	// hysteresis band: interval SLO attainment below the target scales
	// up one replica, at or above the high bound scales down one,
	// inside [target, high) the fleet holds. ScaleSLOHigh defaults
	// to 1.
	ScaleSLOTarget float64
	ScaleSLOHigh   float64

	// ScaleSchedule is the scheduled policy's step plan.
	ScaleSchedule []ScalePoint

	// ProvisionDelay is the cold-start time of a scaled-up replica:
	// provisioned at t, it starts serving at t+ProvisionDelay.
	ProvisionDelay time.Duration

	// FleetEvents injects failures, planned scales, and drains at fixed
	// simulated times (see ParseFleetEvents for the CLI grammar).
	FleetEvents []FleetEvent

	// Telemetry, when non-nil, records request spans, per-replica
	// execution detail, and every routing/admission/autoscaling
	// decision with counterfactual regret (see NewTelemetry and
	// ClusterReport.Regret). Falls back to Config.Telemetry when nil.
	// One recorder serves the whole cluster; give each concurrently
	// running scenario its own.
	Telemetry *Telemetry
}

// WithTelemetry returns a copy of the scenario recording into the
// given telemetry recorder.
func (sc ClusterScenario) WithTelemetry(t *Telemetry) ClusterScenario {
	sc.Telemetry = t
	return sc
}

// telemetry returns the scenario's recorder: the scenario-level field,
// else the replica Config's.
func (sc ClusterScenario) telemetry() *Telemetry {
	if sc.Telemetry != nil {
		return sc.Telemetry
	}
	return sc.Config.Telemetry
}

// WithAutoscaler returns a copy of the scenario resized at runtime by
// the given policy: evaluated every tick, clamped to [minReplicas,
// maxReplicas]. Policy parameters (ScaleQueueTarget, ScaleSLOTarget,
// ScaleSchedule) are set on the returned scenario directly.
func (sc ClusterScenario) WithAutoscaler(policy AutoscalePolicy, tick time.Duration, minReplicas, maxReplicas int) ClusterScenario {
	sc.Autoscaler = policy
	sc.ScaleTick = tick
	sc.MinReplicas = minReplicas
	sc.MaxReplicas = maxReplicas
	return sc
}

// WithReplicaSpecs returns a copy of the scenario serving the given
// heterogeneous fleet (see ReplicaSpec and ParseFleet); the replica
// count is derived from the specs.
func (sc ClusterScenario) WithReplicaSpecs(specs ...ReplicaSpec) ClusterScenario {
	sc.Fleet = specs
	sc.Replicas = FleetReplicas(specs)
	return sc
}

// WithDisaggregation returns a copy of the scenario serving a
// disaggregated fleet: prefill replicas computing first tokens and
// decode replicas generating the rest from handed-off KV caches, all
// built from the scenario's base Config. Heterogeneous disaggregated
// fleets (different hardware per pool) are expressed directly through
// Fleet specs carrying Roles.
func (sc ClusterScenario) WithDisaggregation(prefill, decode int) ClusterScenario {
	return sc.WithReplicaSpecs(
		ReplicaSpec{Count: prefill, Role: RolePrefill},
		ReplicaSpec{Count: decode, Role: RoleDecode},
	)
}

// disaggregated reports whether any fleet spec carries a non-unified
// role.
func (sc ClusterScenario) disaggregated() bool {
	for _, rs := range sc.Fleet {
		if rs.Role != RoleUnified {
			return true
		}
	}
	return false
}

// Validate checks the scenario without building it.
func (sc ClusterScenario) Validate() error {
	if len(sc.Fleet) > 0 {
		for _, rs := range sc.Fleet {
			if err := rs.Validate(); err != nil {
				return err
			}
		}
		total := FleetReplicas(sc.Fleet)
		if total > MaxFleetReplicas {
			return &ConfigError{Field: "Fleet", Value: total,
				Reason: fmt.Sprintf("fleet total exceeds the %d replica maximum", MaxFleetReplicas)}
		}
		if sc.Replicas != 0 && sc.Replicas != total {
			return &ConfigError{Field: "Replicas", Value: sc.Replicas,
				Reason: fmt.Sprintf("does not match the fleet's %d replicas (leave 0 to derive)", total)}
		}
	} else if sc.Replicas < 1 {
		return &ConfigError{Field: "Replicas", Value: sc.Replicas, Reason: "must be >= 1"}
	}
	if !sc.Router.valid() {
		return &ConfigError{Field: "Router", Value: sc.Router, Reason: "unknown router policy"}
	}
	if !sc.DecodeRouter.valid() {
		return &ConfigError{Field: "DecodeRouter", Value: sc.DecodeRouter, Reason: "unknown router policy"}
	}
	if !sc.Admission.valid() {
		return &ConfigError{Field: "Admission", Value: sc.Admission, Reason: "unknown admission policy"}
	}
	if err := sc.validateDisaggregation(); err != nil {
		return err
	}
	if len(sc.Trace) == 0 && sc.TraceStream == nil {
		return &ConfigError{Field: "Trace", Value: len(sc.Trace), Reason: "cluster scenario needs a trace or a trace stream"}
	}
	if len(sc.Trace) > 0 && sc.TraceStream != nil {
		return &ConfigError{Field: "TraceStream", Value: sc.TraceStream,
			Reason: "set either Trace or TraceStream, not both"}
	}
	if err := sc.validateSharding(); err != nil {
		return err
	}
	if _, err := internalClasses(sc.Classes); err != nil {
		return &ConfigError{Field: "Classes", Value: len(sc.Classes), Reason: "invalid traffic class", Err: err}
	}
	if !sc.Autoscaler.valid() {
		return &ConfigError{Field: "Autoscaler", Value: sc.Autoscaler, Reason: "unknown autoscale policy"}
	}
	if sc.MinReplicas < 0 || sc.MaxReplicas < 0 {
		return &ConfigError{Field: "MinReplicas", Value: sc.MinReplicas, Reason: "replica bounds must not be negative"}
	}
	if sc.MaxReplicas > MaxFleetReplicas {
		return &ConfigError{Field: "MaxReplicas", Value: sc.MaxReplicas,
			Reason: fmt.Sprintf("exceeds the %d replica maximum", MaxFleetReplicas)}
	}
	if sc.ProvisionDelay < 0 {
		return &ConfigError{Field: "ProvisionDelay", Value: sc.ProvisionDelay, Reason: "must not be negative"}
	}
	initial := sc.Replicas
	if len(sc.Fleet) > 0 {
		initial = FleetReplicas(sc.Fleet)
	}
	effMin := max(sc.MinReplicas, 1)
	effMax := sc.MaxReplicas
	if effMax == 0 {
		effMax = max(initial, effMin)
	}
	if effMax < effMin {
		return &ConfigError{Field: "MaxReplicas", Value: sc.MaxReplicas,
			Reason: fmt.Sprintf("below MinReplicas %d", sc.MinReplicas)}
	}
	if initial > effMax {
		return &ConfigError{Field: "Replicas", Value: initial,
			Reason: fmt.Sprintf("initial fleet exceeds MaxReplicas %d", sc.MaxReplicas)}
	}
	if sc.Autoscaler != ScaleNone {
		if sc.ScaleTick <= 0 {
			return &ConfigError{Field: "ScaleTick", Value: sc.ScaleTick,
				Reason: "autoscaling needs a positive evaluation tick"}
		}
		if _, err := sc.buildAutoscaler(); err != nil {
			return &ConfigError{Field: "Autoscaler", Value: sc.Autoscaler.String(), Reason: "invalid policy parameters", Err: err}
		}
	}
	if _, err := fleetEventsInternal(sc.FleetEvents); err != nil {
		return &ConfigError{Field: "FleetEvents", Value: len(sc.FleetEvents), Reason: "invalid fleet event", Err: err}
	}
	// Replica configs are validated once per homogeneous group, not
	// once per replica.
	if len(sc.Fleet) == 0 {
		return sc.Config.Validate()
	}
	for _, rs := range sc.Fleet {
		if err := rs.apply(sc.Config).Validate(); err != nil {
			return err
		}
	}
	return nil
}

// validateSharding checks that a sharded scenario stays inside the
// configuration space whose sequential bit-identity the sharded loop
// guarantees (see internal/cluster/shard.go).
func (sc ClusterScenario) validateSharding() error {
	if sc.Shards < 0 {
		return &ConfigError{Field: "Shards", Value: sc.Shards, Reason: "must not be negative"}
	}
	if sc.Shards <= 1 {
		return nil
	}
	reason := ""
	switch {
	case sc.disaggregated():
		reason = "sharding requires a unified fleet (no prefill/decode pools)"
	case sc.Autoscaler != ScaleNone:
		reason = "sharding requires a static fleet (no autoscaler)"
	case len(sc.FleetEvents) > 0:
		reason = "sharding requires a static fleet (no fleet events)"
	case sc.telemetry() != nil:
		reason = "sharding is incompatible with telemetry recording"
	case sc.RequestsOut != nil:
		reason = "sharding is incompatible with a per-request row sink (completion order is nondeterministic across shards)"
	}
	if reason != "" {
		return &ConfigError{Field: "Shards", Value: sc.Shards, Reason: reason}
	}
	return nil
}

// validateDisaggregation checks the role structure of the fleet and
// the per-pool scaling bounds.
func (sc ClusterScenario) validateDisaggregation() error {
	if !sc.disaggregated() {
		if sc.PrefillMinReplicas != 0 || sc.PrefillMaxReplicas != 0 ||
			sc.DecodeMinReplicas != 0 || sc.DecodeMaxReplicas != 0 {
			return &ConfigError{Field: "PrefillMinReplicas", Value: sc.PrefillMinReplicas,
				Reason: "per-pool replica bounds need a disaggregated fleet (specs with #prefill/#decode roles)"}
		}
		return nil
	}
	prefillN, decodeN := 0, 0
	for _, rs := range sc.Fleet {
		switch rs.Role {
		case RolePrefill:
			prefillN += rs.Count
		case RoleDecode:
			decodeN += rs.Count
		default:
			return &ConfigError{Field: "Fleet", Value: rs.String(),
				Reason: "a disaggregated fleet cannot mix unified replicas with prefill/decode pools"}
		}
	}
	if prefillN == 0 || decodeN == 0 {
		return &ConfigError{Field: "Fleet", Value: FleetString(sc.Fleet),
			Reason: "a disaggregated fleet needs at least one prefill and one decode replica"}
	}
	if sc.Config.SkipInitiation {
		return &ConfigError{Field: "Config.SkipInitiation", Value: true,
			Reason: "incompatible with disaggregation (decode replicas are built generation-only internally)"}
	}
	for _, ev := range sc.FleetEvents {
		if ev.Kind == FleetScale {
			return &ConfigError{Field: "FleetEvents", Value: ev.String(),
				Reason: "scale events are ambiguous on a disaggregated fleet (use the per-pool autoscaler)"}
		}
	}
	check := func(field string, lo, hi, initial int) error {
		if lo < 0 || hi < 0 {
			return &ConfigError{Field: field, Value: lo, Reason: "pool replica bounds must not be negative"}
		}
		effMin := max(lo, 1)
		effMax := hi
		if effMax == 0 {
			effMax = max(initial, effMin)
		}
		if effMax < effMin {
			return &ConfigError{Field: field, Value: hi, Reason: fmt.Sprintf("pool max below min %d", lo)}
		}
		if initial > effMax {
			return &ConfigError{Field: field, Value: initial,
				Reason: fmt.Sprintf("initial pool size exceeds pool max %d", hi)}
		}
		return nil
	}
	if err := check("PrefillMaxReplicas", sc.PrefillMinReplicas, sc.PrefillMaxReplicas, prefillN); err != nil {
		return err
	}
	return check("DecodeMaxReplicas", sc.DecodeMinReplicas, sc.DecodeMaxReplicas, decodeN)
}

// buildAutoscaler constructs the internal autoscaling policy, nil for
// ScaleNone.
func (sc ClusterScenario) buildAutoscaler() (cluster.Autoscaler, error) {
	if sc.Autoscaler == ScaleNone {
		return nil, nil
	}
	schedule := make([]cluster.SchedulePoint, len(sc.ScaleSchedule))
	for i, p := range sc.ScaleSchedule {
		schedule[i] = cluster.SchedulePoint{
			Time:     simtime.Time(simtime.FromStd(p.At)),
			Replicas: p.Replicas,
		}
	}
	return cluster.NewAutoscaler(sc.Autoscaler.internal(), cluster.AutoscalerConfig{
		QueueTarget:  sc.ScaleQueueTarget,
		AttainTarget: sc.ScaleSLOTarget,
		AttainHigh:   sc.ScaleSLOHigh,
		Schedule:     schedule,
	})
}

// replicaCost returns the capacity-cost weight of a replica built from
// cfg: its hardware preset's weight, or 1.0 without a preset.
func replicaCost(cfg Config) float64 {
	if cfg.Hardware == "" {
		return 1
	}
	hw, err := perfmodel.LookupHardware(cfg.Hardware)
	if err != nil {
		return 1 // Validate already rejected unknown presets
	}
	return hw.Cost()
}

// build assembles the internal cluster. onRecord, when non-nil, is the
// streaming per-request row sink (RunContext wires RequestsOut through
// it).
func (sc ClusterScenario) build(onRecord func(*metrics.RequestRecord)) (*cluster.Cluster, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	// One buildOptions call per homogeneous replica group; the lists
	// then map replica index -> options. Backend factories inside the
	// options build per-replica state, so sharing an Options value
	// across a group is safe.
	disagg := sc.disaggregated()
	var optsList []core.Options
	var costList []float64
	var roles []cluster.Role
	if len(sc.Fleet) == 0 {
		opts, err := buildOptions(sc.Config)
		if err != nil {
			return nil, err
		}
		optsList = make([]core.Options, sc.Replicas)
		costList = make([]float64, sc.Replicas)
		roles = make([]cluster.Role, sc.Replicas)
		for i := range optsList {
			optsList[i] = opts
			costList[i] = replicaCost(sc.Config)
		}
	} else {
		optsList = make([]core.Options, 0, FleetReplicas(sc.Fleet))
		costList = make([]float64, 0, FleetReplicas(sc.Fleet))
		roles = make([]cluster.Role, 0, FleetReplicas(sc.Fleet))
		for _, rs := range sc.Fleet {
			cfg := rs.apply(sc.Config)
			if rs.Role == RoleDecode {
				// Decode replicas never run a prompt phase: their KV
				// caches arrive from the prefill pool, so requests enter
				// generation directly and prefix caching has nothing to
				// serve.
				cfg.SkipInitiation = true
				cfg.PrefixCache = PrefixCacheOff
			}
			opts, err := buildOptions(cfg)
			if err != nil {
				return nil, err
			}
			for i := 0; i < rs.Count; i++ {
				optsList = append(optsList, opts)
				costList = append(costList, replicaCost(cfg))
				roles = append(roles, rs.Role.internal())
			}
		}
	}
	// Autoscaled slots beyond the initial fleet cycle through their
	// pool's initial configurations, so a heterogeneous fleet (or pool)
	// scales up in its own proportions. Creation order indexes the
	// cycle: for a unified fleet the per-role counter equals the slot
	// index, preserving the classic round-robin.
	poolOpts := map[cluster.Role][]core.Options{}
	poolCosts := map[cluster.Role][]float64{}
	for i := range optsList {
		poolOpts[roles[i]] = append(poolOpts[roles[i]], optsList[i])
		poolCosts[roles[i]] = append(poolCosts[roles[i]], costList[i])
	}
	router, err := cluster.NewRouter(sc.Router.internal())
	if err != nil {
		return nil, err
	}
	var decodeRouter cluster.Router
	if disagg {
		if decodeRouter, err = cluster.NewRouter(sc.DecodeRouter.internal()); err != nil {
			return nil, err
		}
	}
	admission, err := cluster.NewAdmission(sc.Admission.internal(), sc.AdmissionLimit)
	if err != nil {
		return nil, err
	}
	classes, err := internalClasses(sc.Classes)
	if err != nil {
		return nil, err
	}
	// A disaggregated fleet scales per pool: the same policy is
	// instantiated twice so each pool's hysteresis state is its own.
	var scaler, prefillScaler, decodeScaler cluster.Autoscaler
	if disagg {
		if prefillScaler, err = sc.buildAutoscaler(); err != nil {
			return nil, err
		}
		if decodeScaler, err = sc.buildAutoscaler(); err != nil {
			return nil, err
		}
	} else if scaler, err = sc.buildAutoscaler(); err != nil {
		return nil, err
	}
	events, err := fleetEventsInternal(sc.FleetEvents)
	if err != nil {
		return nil, err
	}
	hook := sc.Config.OnIteration
	rec := sc.telemetry().recorder()
	poolSeen := map[cluster.Role]int{}
	slotCost := map[int]float64{}
	return cluster.New(cluster.Config{
		Replicas: len(optsList),
		Roles:    roles,
		NewReplica: func(i int, role cluster.Role) (*core.Simulator, error) {
			list := poolOpts[role]
			if len(list) == 0 {
				return nil, fmt.Errorf("llmservingsim: no replica configuration for role %s", role)
			}
			k := poolSeen[role] % len(list)
			poolSeen[role]++
			slotCost[i] = poolCosts[role][k]
			opts := list[k]
			// All replicas share the cluster's recorder; each tags its
			// events with its own fleet slot.
			opts.Obs = rec
			opts.ObsReplica = i
			inner, err := core.New(opts, nil)
			if err != nil {
				return nil, err
			}
			// Iteration indices are per replica; events from all
			// replicas interleave on the goroutine driving the cluster.
			attachIterationHook(inner, hook)
			return inner, nil
		},
		// The cluster builds slot i before pricing it, so the cost map
		// is always populated by the time this runs.
		ReplicaCost:    func(i int, role cluster.Role) float64 { return slotCost[i] },
		Router:         router,
		DecodeRouter:   decodeRouter,
		Admission:      admission,
		Classes:        classes,
		Autoscaler:     scaler,
		PrefillScaler:  prefillScaler,
		DecodeScaler:   decodeScaler,
		ScaleTick:      simtime.FromStd(sc.ScaleTick),
		MinReplicas:    sc.MinReplicas,
		MaxReplicas:    sc.MaxReplicas,
		PrefillMin:     sc.PrefillMinReplicas,
		PrefillMax:     sc.PrefillMaxReplicas,
		DecodeMin:      sc.DecodeMinReplicas,
		DecodeMax:      sc.DecodeMaxReplicas,
		ProvisionDelay: simtime.FromStd(sc.ProvisionDelay),
		Events:         events,
		Obs:            rec,
		StreamMetrics:  sc.StreamMetrics,
		OnRecord:       onRecord,
		Shards:         sc.Shards,
	})
}

// Run simulates the cluster scenario to completion.
func (sc ClusterScenario) Run() (*ClusterReport, error) {
	return sc.RunContext(context.Background())
}

// RunContext simulates the cluster scenario, checking ctx at arrival
// and iteration boundaries.
func (sc ClusterScenario) RunContext(ctx context.Context) (*ClusterReport, error) {
	var rows *metrics.RequestsTSVWriter
	var onRecord func(*metrics.RequestRecord)
	if sc.RequestsOut != nil {
		rows = metrics.NewRequestsTSVWriter(sc.RequestsOut)
		onRecord = rows.WriteRow
	}
	c, err := sc.build(onRecord)
	if err != nil {
		return nil, err
	}
	var rep *cluster.Report
	if sc.TraceStream != nil {
		rep, err = c.RunStream(ctx, streamAdapter{s: sc.TraceStream})
	} else {
		rep, err = c.RunContext(ctx, toWorkload(sc.Trace))
	}
	if err != nil {
		return nil, err
	}
	if rows != nil {
		if err := rows.Flush(); err != nil {
			return nil, fmt.Errorf("llmservingsim: writing request rows: %w", err)
		}
	}
	out := wrapClusterReport(rep)
	out.Model = sc.fleetModel()
	if len(sc.Fleet) > 0 {
		out.Topology = fmt.Sprintf("fleet[%s] (%d-npu %s)", FleetString(sc.Fleet), sc.Config.NPUs, sc.Config.Parallelism)
	} else {
		out.Topology = fmt.Sprintf("%dx(%d-npu %s)", sc.Replicas, sc.Config.NPUs, sc.Config.Parallelism)
	}
	return out, nil
}

// fleetModel labels the models the scenario serves: the base model, or
// the distinct fleet models joined with '+' when specs override it.
func (sc ClusterScenario) fleetModel() string {
	if len(sc.Fleet) == 0 {
		return sc.Config.Model
	}
	var names []string
	seen := map[string]bool{}
	for _, rs := range sc.Fleet {
		name := rs.Model
		if name == "" {
			name = sc.Config.Model
		}
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	return strings.Join(names, "+")
}

// DistStats summarises one latency component's distribution in seconds
// (nearest-rank percentiles).
type DistStats struct {
	MeanSec, P50Sec, P95Sec, P99Sec float64
}

// ClassStats is one traffic class's outcome in a cluster run.
type ClassStats struct {
	Class string

	Requests    int // arrivals (admitted + rejected)
	Rejected    int // refused, any reason
	Completed   int // finished serving
	SLOAttained int // completed within both SLO targets

	// Rejection breakdown by reason (sums to Rejected): dropped by the
	// admission policy, no routable replica existed, unservable by the
	// scheduler, or lost to an injected replica failure.
	RejectedAdmission  int
	RejectedNoReplica  int
	RejectedUnservable int
	RejectedFailure    int

	TTFT    DistStats // time to first token, over completed requests
	TPOT    DistStats // time per output token, over multi-token requests
	Latency DistStats // end-to-end

	// GoodputTPS is the SLO-attained generation throughput in output
	// tokens/second; ThroughputTPS counts all completed output tokens.
	GoodputTPS    float64
	ThroughputTPS float64
}

// PoolStats is one serving pool's rollup in a disaggregated cluster
// run: capacity consumed and the token rate delivered within the
// latency phase the pool owns (TTFT-attained prompt tokens for
// prefill, TPOT-attained output tokens for decode).
type PoolStats struct {
	Role     string // "prefill" or "decode"
	Slots    int    // fleet slots ever created in this pool
	Requests int    // placements onto the pool, requeues included

	ReplicaSeconds float64
	CostProxy      float64
	GoodputTPS     float64
}

// ReplicaStats summarises one replica's share of a cluster run.
type ReplicaStats struct {
	Index      int
	Backend    string // performance model pricing this replica
	Role       string // serving pool (unified, prefill, decode)
	State      string // lifecycle at end of run (active, retired, failed, ...)
	Requests   int
	Iterations int
	SimEndSec  float64
	PromptTPS  float64
	GenTPS     float64
	Evictions  int64
	Reloads    int64

	// Shared-prefix cache counters (zero unless prefix caching is on).
	// PrefixLinkSeconds prices the replica's spill/reload traffic over
	// its host link.
	PrefixHitRate     float64
	PrefixTokensSaved int64
	PrefixSpillBytes  int64
	PrefixReloadBytes int64
	PrefixLinkSeconds float64

	// ReplicaSeconds is the capacity this slot consumed (provisioning
	// start to retirement or run end); CostWeight its hardware-relative
	// cost factor.
	ReplicaSeconds float64
	CostWeight     float64
}

// ClusterReport is the outcome of a cluster scenario.
type ClusterReport struct {
	Model     string // per-replica model name
	Topology  string // e.g. "4x(16-npu hybrid)"
	Replicas  int    // fleet slots ever created
	Router    string
	Admission string
	Scaler    string // autoscaling policy; "" for a static fleet

	// DecodeRouter names the stage-2 placement policy of a
	// disaggregated cluster ("" on a unified fleet).
	DecodeRouter string

	Requests int
	Admitted int
	Rejected int
	Requeued int // re-routed off failed (outstanding) or draining (backlog) replicas

	SimEndSec float64

	// Latency aggregates all classes; Classes breaks the run down per
	// traffic class, ordered by name.
	Latency    LatencyStats
	Classes    []ClassStats
	PerReplica []ReplicaStats

	// FleetTimeline is the fleet's lifecycle composition over time (a
	// single point for a static fleet). ReplicaSeconds integrates
	// committed replicas over the run; CostProxy weighs each slot by
	// its hardware cost factor — the capacity-cost axis autoscaling
	// studies compare on.
	FleetTimeline  []FleetPoint
	ReplicaSeconds float64
	CostProxy      float64

	PromptTPS     float64
	ThroughputTPS float64 // completed output tokens/second
	GoodputTPS    float64 // SLO-attained output tokens/second

	// Fleet-wide shared-prefix cache rollup (zero unless prefix caching
	// is on): probe hit rate, prefill tokens served from cache, bytes
	// moved over the host links, and the simulated link time that cost.
	PrefixHitRate     float64
	PrefixTokensSaved int64
	PrefixSpillBytes  int64
	PrefixReloadBytes int64
	PrefixLinkSeconds float64

	// Disaggregation rollup (empty/zero on a unified fleet): per-pool
	// stats plus the KV-handoff transfer totals — every prefill->decode
	// cache movement priced through the network model.
	Pools              []PoolStats
	HandoffCount       int
	HandoffBytes       int64
	HandoffLinkSeconds float64

	// Regret summarises counterfactual routing regret — nil unless the
	// scenario ran with a Telemetry recorder.
	Regret *RegretSummary

	// Sessions summarises multi-turn conversation traffic — nil unless
	// the trace carried session identity (see NewPopulationStream).
	Sessions *SessionStats

	inner *cluster.Report
}

// SessionStats aggregates multi-turn session traffic: conversation
// counts, the first- vs later-turn TTFT split (later turns ride the
// session's cached prefix), and session-level goodput.
type SessionStats struct {
	Sessions  int // distinct sessions observed
	Completed int // sessions whose every turn was served
	Attained  int // completed sessions with every turn within SLO

	Turns         int // session turns observed (admitted + rejected)
	TurnsRejected int

	FirstTurnTTFT DistStats // over completed first turns
	LaterTurnTTFT DistStats // over completed turns >= 2

	OutputTokens int64 // generated by completed session turns
	// GoodputTPS is the session-level goodput: output tokens of
	// fully-SLO-attained sessions per second of simulated time.
	GoodputTPS float64
}

// PeakReplicas returns the largest committed fleet size over the run.
func (r *ClusterReport) PeakReplicas() int {
	peak := 0
	for _, p := range r.FleetTimeline {
		if c := p.Committed(); c > peak {
			peak = c
		}
	}
	return peak
}

func wrapClusterReport(rep *cluster.Report) *ClusterReport {
	out := &ClusterReport{
		Replicas:       rep.Replicas,
		Router:         rep.Router,
		Admission:      rep.Admission,
		Scaler:         rep.Scaler,
		DecodeRouter:   rep.DecodeRouter,
		Requests:       rep.Requests,
		Admitted:       rep.Admitted,
		Rejected:       rep.Rejected,
		Requeued:       rep.Requeued,
		ReplicaSeconds: rep.ReplicaSeconds,
		CostProxy:      rep.CostProxy,
		SimEndSec:      rep.SimEnd.Seconds(),
		Latency: LatencyStats{
			Count:   rep.Latency.Count,
			MeanSec: rep.Latency.MeanSec,
			P50Sec:  rep.Latency.P50Sec,
			P95Sec:  rep.Latency.P95Sec,
			P99Sec:  rep.Latency.P99Sec,
			TTFTSec: rep.Latency.MeanTTFTSec,
			TPOTSec: rep.Latency.MeanTPOTSec,
		},
		PromptTPS:     rep.PromptTPS,
		ThroughputTPS: rep.ThroughputTPS,
		GoodputTPS:    rep.GoodputTPS,

		PrefixHitRate:     rep.PrefixHitRate(),
		PrefixTokensSaved: rep.PrefixTokensSaved,
		PrefixSpillBytes:  rep.PrefixSpillBytes,
		PrefixReloadBytes: rep.PrefixReloadBytes,
		PrefixLinkSeconds: rep.PrefixLinkSeconds,

		HandoffCount:       rep.HandoffCount,
		HandoffBytes:       rep.HandoffBytes,
		HandoffLinkSeconds: rep.HandoffLinkSeconds,

		inner: rep,
	}
	for _, p := range rep.Pools {
		out.Pools = append(out.Pools, PoolStats(p))
	}
	if rep.Regret != nil {
		s := RegretSummary(*rep.Regret)
		out.Regret = &s
	}
	if rep.Sessions != nil {
		out.Sessions = &SessionStats{
			Sessions:      rep.Sessions.Sessions,
			Completed:     rep.Sessions.Completed,
			Attained:      rep.Sessions.Attained,
			Turns:         rep.Sessions.Turns,
			TurnsRejected: rep.Sessions.TurnsRejected,
			FirstTurnTTFT: DistStats(rep.Sessions.FirstTurnTTFT),
			LaterTurnTTFT: DistStats(rep.Sessions.LaterTurnTTFT),
			OutputTokens:  rep.Sessions.OutputTokens,
			GoodputTPS:    rep.Sessions.GoodputTPS,
		}
	}
	for _, cs := range rep.Classes {
		out.Classes = append(out.Classes, ClassStats{
			Class:       cs.Class,
			Requests:    cs.Requests,
			Rejected:    cs.Rejected,
			Completed:   cs.Completed,
			SLOAttained: cs.SLOAttained,

			RejectedAdmission:  cs.RejectedAdmission,
			RejectedNoReplica:  cs.RejectedNoReplica,
			RejectedUnservable: cs.RejectedUnservable,
			RejectedFailure:    cs.RejectedFailure,

			TTFT:          DistStats(cs.TTFT),
			TPOT:          DistStats(cs.TPOT),
			Latency:       DistStats(cs.Latency),
			GoodputTPS:    cs.GoodputTPS,
			ThroughputTPS: cs.ThroughputTPS,
		})
	}
	for _, p := range rep.PerReplica {
		out.PerReplica = append(out.PerReplica, ReplicaStats{
			Index:          p.Index,
			Backend:        p.Backend,
			Role:           p.Role,
			State:          p.State,
			Requests:       p.Requests,
			Iterations:     p.Iterations,
			SimEndSec:      p.SimEnd.Seconds(),
			PromptTPS:      p.PromptTPS,
			GenTPS:         p.GenTPS,
			Evictions:      p.Evictions,
			Reloads:        p.Reloads,
			ReplicaSeconds: p.ReplicaSeconds,
			CostWeight:     p.CostWeight,

			PrefixHitRate:     p.PrefixHitRate(),
			PrefixTokensSaved: p.PrefixTokensSaved,
			PrefixSpillBytes:  p.PrefixSpillBytes,
			PrefixReloadBytes: p.PrefixReloadBytes,
			PrefixLinkSeconds: p.PrefixLinkSeconds,
		})
	}
	for _, p := range rep.FleetTimeline {
		out.FleetTimeline = append(out.FleetTimeline, FleetPoint{
			TimeSec:       p.Time.Seconds(),
			Active:        p.Active,
			Provisioning:  p.Provisioning,
			Draining:      p.Draining,
			ActivePrefill: p.ActivePrefill,
			ActiveDecode:  p.ActiveDecode,
		})
	}
	return out
}

// Class returns the named class's stats, or nil if absent.
func (r *ClusterReport) Class(name string) *ClassStats {
	for i := range r.Classes {
		if r.Classes[i].Class == name {
			return &r.Classes[i]
		}
	}
	return nil
}

// TotalIterations sums scheduler iterations across replicas.
func (r *ClusterReport) TotalIterations() int {
	n := 0
	for _, p := range r.PerReplica {
		n += p.Iterations
	}
	return n
}

// KVEvictions sums KV-cache evictions across replicas.
func (r *ClusterReport) KVEvictions() (evictions, reloads int64) {
	for _, p := range r.PerReplica {
		evictions += p.Evictions
		reloads += p.Reloads
	}
	return evictions, reloads
}

// WriteClassTSV writes the per-class summary table (*-classes.tsv).
func (r *ClusterReport) WriteClassTSV(w io.Writer) error { return r.inner.WriteClassTSV(w) }

// WriteRequestsTSV writes the per-request record table (*-requests.tsv).
func (r *ClusterReport) WriteRequestsTSV(w io.Writer) error { return r.inner.WriteRequestsTSV(w) }

// WriteReplicaTSV writes the per-replica placement table
// (*-replicas.tsv).
func (r *ClusterReport) WriteReplicaTSV(w io.Writer) error { return r.inner.WriteReplicaTSV(w) }

// WriteFleetTSV writes the fleet-size timeline with per-interval
// replica-seconds (*-fleet.tsv).
func (r *ClusterReport) WriteFleetTSV(w io.Writer) error { return r.inner.WriteFleetTSV(w) }

// Routers lists the available routing policies.
func Routers() []string { return cluster.Routers() }

// Admissions lists the available admission policies.
func Admissions() []string { return cluster.Admissions() }

// SchedPolicies lists the batch scheduling policies (canonical CLI
// spellings).
func SchedPolicies() []string {
	return []string{SchedOrca.String(), SchedStatic.String(), SchedChunked.String()}
}

// PerfModels lists the performance-model backends (canonical CLI
// spellings).
func PerfModels() []string {
	return []string{PerfModelAstra.String(), PerfModelRoofline.String()}
}

// PrefixCacheModes lists the prefix-cache modes (canonical CLI
// spellings).
func PrefixCacheModes() []string {
	return []string{PrefixCacheOff.String(), PrefixCacheGPU.String(), PrefixCacheTiered.String()}
}
