package llmservingsim

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/model"
	"repro/internal/perfmodel"
)

// ReplicaSpec describes one homogeneous group of replicas inside a
// heterogeneous serving fleet: how many replicas, which model they
// serve, which accelerator they run on, and which performance model
// prices them. Zero-valued fields inherit from the scenario's base
// Config, so a spec only names what differs across the fleet.
type ReplicaSpec struct {
	// Count is the number of replicas in this group (>= 1).
	Count int

	// Model names the LLM this group serves; "" inherits the scenario
	// config's model.
	Model string

	// Hardware names the accelerator preset this group runs on (see
	// Hardwares); "" inherits the scenario config's hardware.
	Hardware string

	// PerfModel selects the group's latency-estimation backend. Like
	// the other fields, the zero value (PerfModelAstra) inherits the
	// scenario config's backend; a non-zero value overrides it.
	PerfModel PerfModel

	// PerfModelSet forces PerfModel to apply even when it is the zero
	// value — the only way to pin a group to astra inside a scenario
	// whose base config selects another backend. ParseFleet sets it
	// whenever a :PERFMODEL suffix is present.
	PerfModelSet bool

	// Role assigns this group to a serving pool. The zero value
	// (RoleUnified) is the classic colocated deployment; a fleet mixing
	// RolePrefill and RoleDecode groups runs disaggregated (see
	// ClusterScenario).
	Role ReplicaRole
}

// String renders the spec in the -fleet grammar,
// "COUNTxMODEL[@HARDWARE][:PERFMODEL][#ROLE]".
func (rs ReplicaSpec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%dx%s", rs.Count, rs.Model)
	if rs.Hardware != "" {
		b.WriteByte('@')
		b.WriteString(rs.Hardware)
	}
	if rs.PerfModelSet || rs.PerfModel != PerfModelAstra {
		b.WriteByte(':')
		b.WriteString(rs.PerfModel.String())
	}
	if rs.Role != RoleUnified {
		b.WriteByte('#')
		b.WriteString(rs.Role.String())
	}
	return b.String()
}

// MaxFleetReplicas bounds a fleet's replica count (per group and in
// total) — far above any simulable deployment, low enough that a typo
// in a -fleet count fails validation instead of attempting a giant
// allocation (or overflowing the fleet total).
const MaxFleetReplicas = 1 << 20

// Validate checks the spec against the registries.
func (rs ReplicaSpec) Validate() error {
	if rs.Count <= 0 {
		return &ConfigError{Field: "Fleet", Value: rs.Count, Reason: "replica count must be >= 1"}
	}
	if rs.Count > MaxFleetReplicas {
		return &ConfigError{Field: "Fleet", Value: rs.Count,
			Reason: fmt.Sprintf("replica count exceeds the %d maximum", MaxFleetReplicas)}
	}
	if rs.Model != "" {
		if _, err := model.Lookup(rs.Model); err != nil {
			return &ConfigError{Field: "Fleet", Value: rs.Model, Reason: "unknown model", Err: err}
		}
	}
	if rs.Hardware != "" {
		if _, err := perfmodel.LookupHardware(rs.Hardware); err != nil {
			return &ConfigError{Field: "Fleet", Value: rs.Hardware, Reason: "unknown hardware preset", Err: err}
		}
	}
	if !rs.PerfModel.valid() {
		return &ConfigError{Field: "Fleet", Value: rs.PerfModel, Reason: "unknown perf model"}
	}
	if !rs.Role.valid() {
		return &ConfigError{Field: "Fleet", Value: rs.Role, Reason: "unknown replica role"}
	}
	return nil
}

// apply overlays the spec onto a base replica configuration:
// zero-valued fields inherit the base.
func (rs ReplicaSpec) apply(base Config) Config {
	if rs.Model != "" {
		base.Model = rs.Model
	}
	if rs.Hardware != "" {
		base.Hardware = rs.Hardware
	}
	if rs.PerfModelSet || rs.PerfModel != PerfModelAstra {
		base.PerfModel = rs.PerfModel
	}
	return base
}

// FleetReplicas sums the replica counts of a fleet.
func FleetReplicas(specs []ReplicaSpec) int {
	n := 0
	for _, rs := range specs {
		n += rs.Count
	}
	return n
}

// FleetString renders a fleet in the -fleet grammar (comma-separated
// specs).
func FleetString(specs []ReplicaSpec) string {
	parts := make([]string, len(specs))
	for i, rs := range specs {
		parts[i] = rs.String()
	}
	return strings.Join(parts, ",")
}

// ParseFleet converts a fleet spec — the grammar shared by the
// llmservingsim CLI's -fleet flag, Sweep construction, and the examples.
// A fleet is a comma-separated list of replica groups of the form
//
//	COUNTxMODEL[@HARDWARE][:PERFMODEL][#ROLE]
//
// e.g. "2xgpt3-7b@rtx3090:astra,2xgpt3-7b@a100:roofline" is four
// gpt3-7b replicas: two RTX 3090-class instances priced by the astra
// pipeline and two A100-class instances priced by the roofline model.
// MODEL may be empty to inherit the scenario's model
// ("4x@h100:roofline"); an omitted @HARDWARE or :PERFMODEL likewise
// inherits the scenario config's. ROLE is "prefill", "decode", or
// "unified" (the default); "2xgpt2#prefill,2xgpt2#decode" is a
// disaggregated fleet. Errors name the offending entry by position and
// text.
func ParseFleet(spec string) ([]ReplicaSpec, error) {
	var out []ReplicaSpec
	for i, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		rs, err := parseReplicaSpec(part)
		if err != nil {
			return nil, fmt.Errorf("llmservingsim: fleet spec entry %d %q: %w", i+1, part, err)
		}
		out = append(out, rs)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("llmservingsim: empty fleet spec %q", spec)
	}
	return out, nil
}

// parseReplicaSpec parses one COUNTxMODEL[@HARDWARE][:PERFMODEL][#ROLE]
// entry. The count/model split is at the first 'x', so model names
// containing 'x' (e.g. moe-8x7b) parse correctly: "2xmoe-8x7b".
func parseReplicaSpec(s string) (ReplicaSpec, error) {
	var rs ReplicaSpec
	countStr, rest, ok := strings.Cut(s, "x")
	if !ok {
		return rs, fmt.Errorf("want COUNTxMODEL[@HARDWARE][:PERFMODEL][#ROLE]")
	}
	count, err := strconv.Atoi(strings.TrimSpace(countStr))
	if err != nil {
		return rs, fmt.Errorf("replica count: %w", err)
	}
	rs.Count = count

	rest, roleStr, hasRole := strings.Cut(rest, "#")
	if hasRole {
		role, err := ParseReplicaRole(strings.TrimSpace(roleStr))
		if err != nil {
			return rs, err
		}
		rs.Role = role
	}
	rest, pmStr, hasPM := strings.Cut(rest, ":")
	modelName, hwName, _ := strings.Cut(rest, "@")
	rs.Model = strings.TrimSpace(modelName)
	rs.Hardware = strings.TrimSpace(hwName)
	if hasPM {
		pm, err := ParsePerfModel(strings.TrimSpace(pmStr))
		if err != nil {
			return rs, err
		}
		rs.PerfModel = pm
		rs.PerfModelSet = true
	}
	return rs, rs.Validate()
}
