package llmservingsim_test

// Golden determinism for the client/session workload layer: a
// fixed-seed population run over the starved gpt2 cluster is pinned
// bit-for-bit — per-turn TTFT split, prefix hit rate, and session
// goodput included — standalone, under parallel Sweep, and with the
// generator streamed instead of materialized.

import (
	"fmt"
	"os"
	"testing"
	"time"

	sim "repro"
)

// goldenSessionClasses carry modest system prompts over short fixed
// lengths, so even a deep conversation's input (prompt + clamped
// context + new tokens) stays inside gpt2's 1024-token window.
func goldenSessionClasses() []sim.TrafficClass {
	return []sim.TrafficClass{
		{Name: "chat", Dist: "fixed-192-96", RatePerSec: 48,
			TTFT: 2 * time.Second, TPOT: 250 * time.Millisecond, PrefixTokens: 128},
		{Name: "api", Dist: "fixed-96-48", RatePerSec: 80,
			TTFT: 120 * time.Millisecond, TPOT: 2 * time.Millisecond, PrefixTokens: 64},
	}
}

// goldenSessionSpecs exercise every population feature at once:
// zipf-skewed client rates, diurnal modulation, burst episodes, and
// multi-turn sessions (think times short enough that the fixed-seed
// trace reaches eighth turns) whose context growth is clamped under
// gpt2's window.
func goldenSessionSpecs() (sim.PopulationSpec, sim.SessionSpec) {
	pop := sim.PopulationSpec{
		Clients: 16, RateDist: "zipf", Skew: 1.1,
		DiurnalAmp: 0.3, DiurnalPeriod: 60,
		BurstFactor: 3, BurstFrac: 0.1, BurstMean: 5,
	}
	sess := sim.SessionSpec{MeanTurns: 4, ThinkMean: 0.2, ThinkSigma: 0.6, MaxContext: 384}
	return pop, sess
}

func goldenSessionScenario(t testing.TB) sim.ClusterScenario {
	t.Helper()
	cfg := goldenConfig(sim.SchedChunked, sim.KVPaged)
	cfg.PerfModel = sim.PerfModelRoofline
	cfg.PrefixCache = sim.PrefixCacheGPU
	// Unlike the starved baseline, give the KV budget room to keep idle
	// conversation chains resident across think times: the pinned
	// behaviour here is prefix-affinity following session lineage, which
	// starvation would erase (every idle chain dropped between turns).
	cfg.NPU.MemoryBytes = 1 << 30
	return sim.ClusterScenario{
		Name:     "sessions",
		Config:   cfg,
		Replicas: 2,
		Router:   sim.RouterPrefixAffinity,
		Classes:  goldenSessionClasses(),
	}
}

func goldenSessionTrace(t testing.TB) []sim.Request {
	t.Helper()
	pop, sess := goldenSessionSpecs()
	trace, err := sim.PopulationTrace(goldenSessionClasses(), pop, sess, 128, 20240614)
	if err != nil {
		t.Fatal(err)
	}
	return trace
}

// sessionFingerprint extends the cluster fingerprint with the session
// dimension: conversation counts, the turn-1 vs later-turn TTFT split,
// and session-level goodput, all at exact precision.
func sessionFingerprint(r *sim.ClusterReport) string {
	ss := r.Sessions
	if ss == nil {
		return clusterFingerprint(r) + " sessions=nil"
	}
	return fmt.Sprintf("%s hit=%s sessions=%d done=%d attained=%d turns=%d turns_rej=%d t1p50=%s t1p99=%s ltp50=%s ltp99=%s out=%d sess_good=%s",
		clusterFingerprint(r), g17(r.PrefixHitRate),
		ss.Sessions, ss.Completed, ss.Attained, ss.Turns, ss.TurnsRejected,
		g17(ss.FirstTurnTTFT.P50Sec), g17(ss.FirstTurnTTFT.P99Sec),
		g17(ss.LaterTurnTTFT.P50Sec), g17(ss.LaterTurnTTFT.P99Sec),
		ss.OutputTokens, g17(ss.GoodputTPS))
}

// TestGoldenSessions pins the population+session run bit-for-bit under
// both prefix-affinity and round-robin routing, and requires the
// session payoff to actually materialise: affinity follows each
// conversation's chain, so it must beat round-robin on hit rate and on
// later-turn TTFT (the turns with history to reuse). The affinity run
// is additionally reproduced inside a parallel Sweep.
func TestGoldenSessions(t *testing.T) {
	goldens := map[string]string{
		"prefix-affinity": "iters=7019 admitted=128 rejected=0 end_ps=1693473845391 evict=0 reload=0 tput=5073.594743363883 good=5073.594743363883 p99=0.02847551379 hit=0.5546875 sessions=57 done=44 attained=44 turns=128 turns_rej=0 t1p50=0.00079809036359756308 t1p99=0.0022126814185719264 ltp50=0.0010098389155383846 ltp99=0.002488965671220492 out=8592 sess_good=3486.3248795181994",
		"round-robin":     "iters=7415 admitted=128 rejected=0 end_ps=1692557351524 evict=0 reload=0 tput=5076.3420171633497 good=5076.3420171633497 p99=0.028601569471 hit=0.3828125 sessions=57 done=44 attained=44 turns=128 turns_rej=0 t1p50=0.00079809036359756308 t1p99=0.0016167846393404014 ltp50=0.0013288791208660175 ltp99=0.003028207307864377 out=8592 sess_good=3488.2126710116877",
	}

	run := func(t *testing.T, router sim.RouterPolicy) (*sim.ClusterReport, string) {
		t.Helper()
		sc := goldenSessionScenario(t)
		sc.Router = router
		sc.Trace = goldenSessionTrace(t)
		rep, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		got := sessionFingerprint(rep)
		if os.Getenv("GOLDEN_PRINT") != "" {
			t.Logf("golden: %q: %q,", router.String(), got)
			return rep, got
		}
		want, ok := goldens[router.String()]
		if !ok {
			t.Fatalf("no golden pinned for %s; run with GOLDEN_PRINT=1", router)
		}
		if got != want {
			t.Errorf("behaviour drifted from pinned golden\n got %s\nwant %s", got, want)
		}
		return rep, got
	}

	affinity, got := run(t, sim.RouterPrefixAffinity)
	rr, _ := run(t, sim.RouterRoundRobin)

	ss := affinity.Sessions
	if ss == nil || ss.Sessions == 0 {
		t.Fatal("session summary missing from the cluster report")
	}
	if ss.Turns <= ss.Sessions {
		t.Errorf("no multi-turn traffic: %d turns over %d sessions", ss.Turns, ss.Sessions)
	}
	if affinity.PrefixHitRate <= rr.PrefixHitRate {
		t.Errorf("prefix-affinity hit rate %.3f does not beat round-robin %.3f",
			affinity.PrefixHitRate, rr.PrefixHitRate)
	}
	if a, r := ss.LaterTurnTTFT.P99Sec, rr.Sessions.LaterTurnTTFT.P99Sec; a >= r {
		t.Errorf("prefix-affinity later-turn p99 TTFT %.6fs does not beat round-robin %.6fs", a, r)
	}

	// The same scenario inside a parallel Sweep (alongside a copy, so
	// workers genuinely interleave) must reproduce the fingerprint.
	first, second := goldenSessionScenario(t), goldenSessionScenario(t)
	first.Trace, second.Trace = goldenSessionTrace(t), goldenSessionTrace(t)
	sw := &sim.Sweep{ClusterScenarios: []sim.ClusterScenario{first, second}, Workers: 2}
	swRep, err := sw.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := swRep.Err(); err != nil {
		t.Fatal(err)
	}
	for i, res := range swRep.Results {
		if swGot := sessionFingerprint(res.Cluster); swGot != got {
			t.Errorf("sweep result %d diverged from the standalone run\n got %s\nwant %s", i, swGot, got)
		}
	}
}

// TestGoldenSessionStreamEquivalence pins the pull path for session
// traffic: the population generator fed directly through TraceStream
// reproduces the materialized-trace fingerprint (which
// TestGoldenSessions pins to a literal, so this transitively pins the
// streaming generator too).
func TestGoldenSessionStreamEquivalence(t *testing.T) {
	sc := goldenSessionScenario(t)
	sc.Trace = goldenSessionTrace(t)
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := sessionFingerprint(rep)

	pop, sess := goldenSessionSpecs()
	stream, err := sim.NewPopulationStream(goldenSessionClasses(), pop, sess, 128, 20240614)
	if err != nil {
		t.Fatal(err)
	}
	sc = goldenSessionScenario(t)
	sc.TraceStream = stream
	rep, err = sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := sessionFingerprint(rep); got != want {
		t.Errorf("streamed population run diverged from materialized trace\n got %s\nwant %s", got, want)
	}
}
