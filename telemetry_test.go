package llmservingsim_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	sim "repro"
)

func TestParseTraceDetail(t *testing.T) {
	cases := map[string]sim.TraceDetail{
		"":          sim.TraceSpans,
		"spans":     sim.TraceSpans,
		"decisions": sim.TraceDecisions,
		"full":      sim.TraceFull,
	}
	for in, want := range cases {
		got, err := sim.ParseTraceDetail(in)
		if err != nil || got != want {
			t.Errorf("ParseTraceDetail(%q) = %v, %v", in, got, err)
		}
		if in != "" && got.String() != in {
			t.Errorf("round-trip %q -> %q", in, got)
		}
	}
	if _, err := sim.ParseTraceDetail("bogus"); err == nil {
		t.Fatal("bogus detail must fail")
	}
	var d sim.TraceDetail
	if err := d.Set("full"); err != nil || d != sim.TraceFull {
		t.Fatalf("flag.Value Set: %v %v", d, err)
	}
}

// telemetryScenario is a small prefix-heavy cluster run that exercises
// routing, admission, spans, and KV churn.
func telemetryScenario(t testing.TB, tel *sim.Telemetry) sim.ClusterScenario {
	t.Helper()
	classes := []sim.TrafficClass{
		{Name: "chat", Dist: "fixed-96-48", RatePerSec: 120,
			TTFT: 50 * time.Millisecond, TPOT: 5 * time.Millisecond},
		{Name: "agent", Dist: "fixed-64-64", RatePerSec: 120,
			TTFT: 50 * time.Millisecond, TPOT: 5 * time.Millisecond,
			PrefixTokens: 512},
	}
	trace, err := sim.MultiClassTrace(classes, 64, sim.Ramp{}, 77)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.Model = "gpt2"
	cfg.NPUs = 2
	cfg.Parallelism = sim.ParallelismTensor
	cfg.Scheduling = sim.SchedChunked
	cfg.PerfModel = sim.PerfModelRoofline
	cfg.PrefixCache = sim.PrefixCacheTiered
	cfg.NPU.MemoryBytes = 161 << 20
	cfg.KVHostMemGB = 0.02
	return sim.ClusterScenario{
		Name:     "telemetry",
		Config:   cfg,
		Replicas: 2,
		Router:   sim.RouterLeastLoaded,
		Classes:  classes,
		Trace:    trace,
	}.WithTelemetry(tel)
}

// exportBytes runs the scenario with a fresh full-detail recorder and
// returns both serialized exports.
func exportBytes(t testing.TB, run func(sc sim.ClusterScenario)) (chrome, decisions string) {
	t.Helper()
	tel := sim.NewTelemetry(sim.TelemetryConfig{Detail: sim.TraceFull})
	run(telemetryScenario(t, tel))
	var cb, db bytes.Buffer
	if err := tel.WriteChromeTrace(&cb); err != nil {
		t.Fatal(err)
	}
	if err := tel.WriteDecisionsTSV(&db); err != nil {
		t.Fatal(err)
	}
	return cb.String(), db.String()
}

// TestTelemetryDeterminism pins the acceptance bar for the recorder:
// the same seed must yield byte-identical Chrome-trace and decisions
// exports, run standalone or interleaved with other scenarios inside a
// parallel Sweep.
func TestTelemetryDeterminism(t *testing.T) {
	standalone := func(sc sim.ClusterScenario) {
		if _, err := sc.Run(); err != nil {
			t.Fatal(err)
		}
	}
	c1, d1 := exportBytes(t, standalone)
	c2, d2 := exportBytes(t, standalone)
	if c1 != c2 || d1 != d2 {
		t.Fatal("standalone telemetry exports are not deterministic")
	}
	if !strings.Contains(d1, "route\tleast-loaded") {
		t.Fatalf("decisions TSV missing routing rows: %q", d1[:min(len(d1), 200)])
	}

	// Two telemetry-carrying scenarios (own recorders) racing on two
	// Sweep workers must each reproduce the standalone bytes.
	tels := []*sim.Telemetry{
		sim.NewTelemetry(sim.TelemetryConfig{Detail: sim.TraceFull}),
		sim.NewTelemetry(sim.TelemetryConfig{Detail: sim.TraceFull}),
	}
	sw := &sim.Sweep{
		ClusterScenarios: []sim.ClusterScenario{
			telemetryScenario(t, tels[0]),
			telemetryScenario(t, tels[1]),
		},
		Workers: 2,
	}
	rep, err := sw.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	for i, tel := range tels {
		var cb, db bytes.Buffer
		if err := tel.WriteChromeTrace(&cb); err != nil {
			t.Fatal(err)
		}
		if err := tel.WriteDecisionsTSV(&db); err != nil {
			t.Fatal(err)
		}
		if cb.String() != c1 {
			t.Errorf("sweep recorder %d chrome trace diverged from standalone", i)
		}
		if db.String() != d1 {
			t.Errorf("sweep recorder %d decisions TSV diverged from standalone", i)
		}
	}
}

// TestTelemetrySingleInstance wires WithTelemetry through the
// single-replica constructor path: spans and full-detail events are
// captured, and a nil telemetry pointer is accepted everywhere.
func TestTelemetrySingleInstance(t *testing.T) {
	trace, err := sim.ShareGPTTrace(24, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	tel := sim.NewTelemetry(sim.TelemetryConfig{Detail: sim.TraceFull})
	s, err := sim.New(trace,
		sim.WithModel("gpt2"),
		sim.WithNPUs(2),
		sim.WithParallelism(sim.ParallelismTensor),
		sim.WithPerfModel(sim.PerfModelRoofline),
		sim.WithTelemetry(tel),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if tel.Events() == 0 {
		t.Fatal("single-instance run recorded no events")
	}
	var buf bytes.Buffer
	if err := tel.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"prefill", "decode", "iterations"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("single-instance trace missing %q", want)
		}
	}

	// Nil recorders are inert but exportable.
	var nilTel *sim.Telemetry
	if nilTel.Events() != 0 || nilTel.Decisions() != 0 {
		t.Fatal("nil telemetry must count nothing")
	}
	buf.Reset()
	if err := nilTel.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "traceEvents") {
		t.Fatalf("nil telemetry trace %q", buf.String())
	}
}
