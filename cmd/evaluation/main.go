// Command evaluation reproduces the paper's five evaluation experiments,
// mirroring the artifact's evaluation1.sh ... evaluation5.sh scripts. Each
// experiment writes a text summary plus TSV result files into the chosen
// output directory:
//
//	evaluation 1   — simulator validation vs the GPU reference (Fig. 6)
//	evaluation 2   — NPU+PIM heterogeneous validation vs NeuPIMs (Fig. 7)
//	evaluation 3   — simulation-time speedup over slow simulators (Fig. 8)
//	evaluation 4   — reuse on/off breakdown across parallelisms (Fig. 9)
//	evaluation 5   — simulation-time scalability over NPU counts (Fig. 10)
//	evaluation all — everything
//
// All experiments drive the llmservingsim Sweep API. The throughput
// experiments (1, 2) fan their scenario grid out over all cores —
// simulated results are deterministic, so parallelism only changes
// wall-clock. The simulation-time experiments (3, 4, 5) measure host
// wall-clock per component, so they pin the sweep to one worker to keep
// timings contention-free.
//
// Usage: evaluation [-out DIR] [-quick] <1|2|3|4|5|all>
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	llmservingsim "repro"
	"repro/internal/baseline"
	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/workload"
)

var (
	outDir = flag.String("out", "evaluation-results", "output directory")
	quick  = flag.Bool("quick", false, "smaller workloads for a fast pass")
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: evaluation [-out DIR] [-quick] <1|2|3|4|5|all>")
		os.Exit(2)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	evals := map[string]func() error{
		"1": eval1, "2": eval2, "3": eval3, "4": eval4, "5": eval5,
	}
	run := func(id string) {
		fmt.Printf("--- evaluation %s ---\n", id)
		start := time.Now()
		if err := evals[id](); err != nil {
			fatal(err)
		}
		fmt.Printf("--- evaluation %s done in %v ---\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	switch arg := flag.Arg(0); arg {
	case "all":
		for _, id := range []string{"1", "2", "3", "4", "5"} {
			run(id)
		}
	case "1", "2", "3", "4", "5":
		run(arg)
	default:
		fatal(fmt.Errorf("unknown evaluation %q", arg))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "evaluation:", err)
	os.Exit(1)
}

func outPath(name string) string { return filepath.Join(*outDir, name) }

func writeFile(name string, write func(io.Writer) error) error {
	f, err := os.Create(outPath(name))
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeString(name, s string) error {
	return writeFile(name, func(w io.Writer) error {
		_, err := io.WriteString(w, s)
		return err
	})
}

// eval1 validates throughput trends against the GPU reference (Fig. 6).
// Each model runs twice — NPU simulator and GPU reference — as one
// sweep of paired scenarios.
func eval1() error {
	n := 48
	if *quick {
		n = 16
	}
	cases := []struct {
		model string
		tp    int
		rate  float64
	}{
		{"gpt3-7b", 1, 6}, {"gpt3-30b", 4, 2}, {"llama-7b", 1, 6}, {"llama-30b", 4, 2},
	}
	sw := llmservingsim.NewSweep()
	names := make([]string, len(cases))
	for i, c := range cases {
		trace, err := llmservingsim.ShareGPTTrace(n, c.rate, 42)
		if err != nil {
			return err
		}
		cfg := llmservingsim.DefaultConfig()
		cfg.Model = c.model
		cfg.NPUs = c.tp
		cfg.Parallelism = llmservingsim.ParallelismTensor
		cfg.ThroughputWindow = 5 * time.Second
		ref := cfg
		ref.UseGPUEngine = true
		names[i] = fmt.Sprintf("eval1-%s-tp%d", c.model, c.tp)
		sw.Add(
			llmservingsim.NewScenario(names[i], cfg, trace),
			llmservingsim.NewScenario(names[i]+"-ref", ref, trace),
		)
	}
	rep, err := sw.Run()
	if err != nil {
		return err
	}
	if err := rep.Err(); err != nil {
		return err
	}

	var allErrs []float64
	for i, c := range cases {
		sim := rep.Result(names[i]).Report
		ref := rep.Result(names[i] + "-ref").Report
		if err := writeFile(names[i]+"-throughput.tsv", sim.WriteThroughputTSV); err != nil {
			return err
		}
		if err := writeFile(names[i]+"-reference-throughput.tsv", ref.WriteThroughputTSV); err != nil {
			return err
		}
		genErr := metrics.MeanAbsPctError(series(sim.Throughput, false), series(ref.Throughput, false))
		promptErr := metrics.MeanAbsPctError(series(sim.Throughput, true), series(ref.Throughput, true))
		allErrs = append(allErrs, genErr, promptErr)
		fmt.Printf("%-10s TP%d  ref gen %7.1f tok/s  sim gen %7.1f tok/s  trend err prompt %.1f%% gen %.1f%%\n",
			c.model, c.tp, ref.GenTPS, sim.GenTPS, 100*promptErr, 100*genErr)
	}
	var sum float64
	for _, e := range allErrs {
		sum += e
	}
	fmt.Printf("average trend error %.1f%% (paper: 14.7%%)\n", 100*sum/float64(len(allErrs)))
	return nil
}

func series(points []llmservingsim.ThroughputPoint, prompt bool) []float64 {
	out := make([]float64, len(points))
	for i, p := range points {
		if prompt {
			out[i] = p.PromptTPS
		} else {
			out[i] = p.GenTPS
		}
	}
	return out
}

// eval2 validates the NPU+PIM heterogeneous system against the analytic
// NeuPIMs model (Fig. 7).
func eval2() error {
	n := 256
	if *quick {
		n = 64
	}
	trace, err := llmservingsim.AlpacaTrace(n, 64, 7)
	if err != nil {
		return err
	}
	// The analytic NeuPIMs baseline consumes the internal request form;
	// regenerating from the same generator and seed yields the same
	// trace the scenarios run, up to sub-nanosecond arrival truncation
	// in the public Request form.
	baselineTrace, err := workload.PoissonTrace(workload.Alpaca(), n, 64, 7)
	if err != nil {
		return err
	}
	configs := []struct {
		model  string
		tp, pp int
	}{
		{"gpt3-7b", 4, 1}, {"gpt3-7b", 2, 2},
		{"gpt3-13b", 8, 1}, {"gpt3-13b", 4, 2},
		{"gpt3-30b", 8, 2}, {"gpt3-30b", 4, 4},
	}
	sw := llmservingsim.NewSweep()
	for _, c := range configs {
		cfg := llmservingsim.DefaultConfig()
		cfg.Model = c.model
		cfg.NPUs = c.tp * c.pp
		cfg.NPUGroups = c.pp
		cfg.PIMType = llmservingsim.PIMLocal
		cfg.SubBatches = 2
		sw.Add(llmservingsim.NewScenario(fmt.Sprintf("%s TP%d PP%d", c.model, c.tp, c.pp), cfg, trace))
	}
	rep, err := sw.Run()
	if err != nil {
		return err
	}
	if err := rep.Err(); err != nil {
		return err
	}

	var sims, refs []float64
	rows := "model\tscheme\tneupims_tps\tllmservingsim_tps\n"
	for i, c := range configs {
		r := rep.Results[i].Report
		simT := r.PromptTPS + r.GenTPS
		refT, err := baseline.NeuPIMsThroughput(baseline.NeuPIMsConfig{
			Model: model.MustLookup(c.model), NPU: config.DefaultNPU(), PIM: config.DefaultPIM(),
			TP: c.tp, PP: c.pp, SubBatch: true,
		}, baselineTrace)
		if err != nil {
			return err
		}
		sims, refs = append(sims, simT), append(refs, refT)
		rows += fmt.Sprintf("%s\tTP%d PP%d\t%.0f\t%.0f\n", c.model, c.tp, c.pp, refT, simT)
		fmt.Printf("%-10s TP%d PP%d  neupims %6.0f  llmservingsim %6.0f tok/s\n", c.model, c.tp, c.pp, refT, simT)
	}
	fmt.Printf("geomean error %.2f%% (paper: 8.88%%)\n", 100*metrics.GeomeanError(sims, refs))
	return writeString("eval2-throughput.tsv", rows)
}

// eval3 measures one-iteration simulation time of the conventional
// simulators vs LLMServingSim (Fig. 8).
func eval3() error {
	models := []string{"gpt3-7b", "gpt3-13b", "gpt3-30b"}
	if *quick {
		models = models[:1]
	}
	sw := timingSweep()
	for _, name := range models {
		sw.Add(iterationScenario(name, name, 1, 1, 32, 512, true, false))
	}
	rep, err := sw.Run()
	if err != nil {
		return err
	}
	if err := rep.Err(); err != nil {
		return err
	}

	rows := "model\tmnpusim_ms\tgenesys_ms\tneupims_ms\tllmservingsim_ms\n"
	for i, name := range models {
		m := model.MustLookup(name)
		walls := map[baseline.SlowMode]time.Duration{}
		for _, mode := range []baseline.SlowMode{baseline.MNPUsimMode, baseline.GeneSysMode, baseline.NeuPIMsMode} {
			r, err := baseline.SimulateIteration(mode, m, config.DefaultNPU(), config.DefaultPIM(), 32, 512)
			if err != nil {
				return err
			}
			walls[mode] = r.Wall
		}
		ours := rep.Results[i].Report.SimTime.Total
		rows += fmt.Sprintf("%s\t%.1f\t%.1f\t%.1f\t%.1f\n", name,
			ms(walls[baseline.MNPUsimMode]), ms(walls[baseline.GeneSysMode]),
			ms(walls[baseline.NeuPIMsMode]), ms(ours))
		fmt.Printf("%-10s mnpusim %8.0fms  genesys %7.0fms  neupims %7.0fms  llmservingsim %6.1fms  (%.0fx / %.0fx / %.0fx)\n",
			name, ms(walls[baseline.MNPUsimMode]), ms(walls[baseline.GeneSysMode]),
			ms(walls[baseline.NeuPIMsMode]), ms(ours),
			float64(walls[baseline.MNPUsimMode])/float64(ours),
			float64(walls[baseline.GeneSysMode])/float64(ours),
			float64(walls[baseline.NeuPIMsMode])/float64(ours))
	}
	return writeString("eval3-simulation-time.tsv", rows)
}

// eval4 reproduces the reuse on/off component breakdown (Fig. 9).
func eval4() error {
	strategies := []struct{ tp, pp int }{{64, 1}, {16, 4}, {8, 8}, {4, 16}, {1, 64}}
	if *quick {
		strategies = strategies[:2]
	}
	sw := timingSweep()
	for _, s := range strategies {
		for _, reuse := range []bool{false, true} {
			name := fmt.Sprintf("TP%d PP%d reuse=%v", s.tp, s.pp, reuse)
			sw.Add(iterationScenario(name, "gpt3-30b", s.tp, s.pp, 64, 1024, reuse, reuse))
		}
	}
	rep, err := sw.Run()
	if err != nil {
		return err
	}
	if err := rep.Err(); err != nil {
		return err
	}

	rows := "strategy\treuse\tscheduler_ms\tengine_ms\tconverter_ms\tastra_ms\ttotal_ms\n"
	i := 0
	for _, s := range strategies {
		for _, reuse := range []bool{false, true} {
			h := rep.Results[i].Report.SimTime
			i++
			label := "w/o"
			if reuse {
				label = "w/"
			}
			rows += fmt.Sprintf("TP%d PP%d\t%s\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\n",
				s.tp, s.pp, label, ms(h.Scheduler), ms(h.ExecutionEngine),
				ms(h.GraphConverter), ms(h.AstraSim), ms(h.Total))
			fmt.Printf("TP%-3d PP%-3d %-4s engine %7.0fms  convert %6.0fms  astra %6.0fms  total %7.0fms\n",
				s.tp, s.pp, label, ms(h.ExecutionEngine), ms(h.GraphConverter), ms(h.AstraSim), ms(h.Total))
		}
	}
	return writeString("eval4-simulation-time.tsv", rows)
}

// eval5 sweeps NPU counts for simulation-time scalability (Fig. 10).
func eval5() error {
	counts := []int{8, 16, 32, 64, 128, 256, 512, 1024, 2048}
	models := []string{"gpt3-7b", "gpt3-30b", "gpt3-175b"}
	if *quick {
		counts = []int{8, 64, 512}
		models = models[:2]
	}
	sw := timingSweep()
	for _, n := range counts {
		for _, name := range models {
			sw.Add(iterationScenario(fmt.Sprintf("%s-npus%d", name, n), name, n, 1, 64, 1024, true, false))
		}
	}
	rep, err := sw.Run()
	if err != nil {
		return err
	}
	if err := rep.Err(); err != nil {
		return err
	}

	rows := "npus"
	for _, m := range models {
		rows += "\t" + m + "_ms"
	}
	rows += "\n"
	i := 0
	for _, n := range counts {
		rows += fmt.Sprintf("%d", n)
		fmt.Printf("%5d NPUs:", n)
		for _, name := range models {
			total := rep.Results[i].Report.SimTime.Total
			i++
			rows += fmt.Sprintf("\t%.1f", ms(total))
			fmt.Printf("  %s %7.0fms", name, ms(total))
		}
		fmt.Println()
		rows += "\n"
	}
	return writeString("eval5-simulation-time.tsv", rows)
}

// timingSweep returns a single-worker sweep: the simulation-time
// experiments measure host wall-clock per component, and concurrent
// scenarios would contend for cores and inflate the timings.
func timingSweep() *llmservingsim.Sweep {
	return &llmservingsim.Sweep{Workers: 1}
}

// iterationScenario builds a one-iteration scenario (the unit the
// Fig. 8-10 experiments measure): a TPxPP hybrid system running a single
// fixed-shape batch, with NPU memory grown to hold the weight shard.
// One Step is the full Fig. 4 cycle including the scheduler's completion
// feedback, so the timings carry a few extra microseconds of scheduler
// time relative to measuring Next+Simulate alone.
func iterationScenario(scenarioName, modelName string, tp, pp, batch, seqLen int, modelRedundancy, computationReuse bool) llmservingsim.Scenario {
	cfg := llmservingsim.DefaultConfig()
	cfg.Model = modelName
	cfg.NPUs = tp * pp
	cfg.NPUGroups = pp
	cfg.ModelRedundancyReuse = modelRedundancy
	cfg.ComputationReuse = computationReuse
	m := model.MustLookup(modelName)
	perDev := m.WeightBytes()/int64(tp*pp) + 32*config.GB
	if cfg.NPU.MemoryBytes < perDev {
		cfg.NPU.MemoryBytes = perDev
	}
	sc := llmservingsim.NewScenario(scenarioName, cfg, llmservingsim.UniformTrace(batch, seqLen, 1))
	sc.MaxIterations = 1
	return sc
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
