// Command evaluation reproduces the paper's five evaluation experiments,
// mirroring the artifact's evaluation1.sh ... evaluation5.sh scripts. Each
// experiment writes a text summary plus TSV result files into the chosen
// output directory:
//
//	evaluation 1   — simulator validation vs the GPU reference (Fig. 6)
//	evaluation 2   — NPU+PIM heterogeneous validation vs NeuPIMs (Fig. 7)
//	evaluation 3   — simulation-time speedup over slow simulators (Fig. 8)
//	evaluation 4   — reuse on/off breakdown across parallelisms (Fig. 9)
//	evaluation 5   — simulation-time scalability over NPU counts (Fig. 10)
//	evaluation all — everything
//
// Usage: evaluation [-out DIR] [-quick] <1|2|3|4|5|all>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/baseline"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/engine/gpu"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/network"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/workload"
)

var (
	outDir = flag.String("out", "evaluation-results", "output directory")
	quick  = flag.Bool("quick", false, "smaller workloads for a fast pass")
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: evaluation [-out DIR] [-quick] <1|2|3|4|5|all>")
		os.Exit(2)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	evals := map[string]func() error{
		"1": eval1, "2": eval2, "3": eval3, "4": eval4, "5": eval5,
	}
	run := func(id string) {
		fmt.Printf("--- evaluation %s ---\n", id)
		start := time.Now()
		if err := evals[id](); err != nil {
			fatal(err)
		}
		fmt.Printf("--- evaluation %s done in %v ---\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	switch arg := flag.Arg(0); arg {
	case "all":
		for _, id := range []string{"1", "2", "3", "4", "5"} {
			run(id)
		}
	case "1", "2", "3", "4", "5":
		run(arg)
	default:
		fatal(fmt.Errorf("unknown evaluation %q", arg))
	}
}

func gpuEngineFactory() (engine.Engine, error) { return gpu.New(config.DefaultGPU()) }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "evaluation:", err)
	os.Exit(1)
}

func outPath(name string) string { return filepath.Join(*outDir, name) }

func writeFile(name string, write func(*os.File) error) error {
	f, err := os.Create(outPath(name))
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// eval1 validates throughput trends against the GPU reference (Fig. 6).
func eval1() error {
	n := 48
	if *quick {
		n = 16
	}
	cases := []struct {
		model string
		tp    int
		rate  float64
	}{
		{"gpt3-7b", 1, 6}, {"gpt3-30b", 4, 2}, {"llama-7b", 1, 6}, {"llama-30b", 4, 2},
	}
	var allErrs []float64
	for _, c := range cases {
		trace, err := workload.PoissonTrace(workload.ShareGPT(), n, c.rate, 42)
		if err != nil {
			return err
		}
		topo, err := network.Build(network.Tensor, c.tp, 0, config.DefaultLink(), config.DefaultLink())
		if err != nil {
			return err
		}
		run := func(gpuRef bool) (*core.Report, error) {
			opts := core.Options{
				Model: model.MustLookup(c.model), Topo: topo,
				NPU: config.DefaultNPU(), PIM: config.DefaultPIM(),
				Reuse: core.ReuseAll(), ThroughputWindow: 5 * simtime.Second,
			}
			if gpuRef {
				opts.EngineFactory = gpuEngineFactory
			}
			sim, err := core.New(opts, trace)
			if err != nil {
				return nil, err
			}
			return sim.Run()
		}
		ref, err := run(true)
		if err != nil {
			return err
		}
		sim, err := run(false)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("eval1-%s-tp%d", c.model, c.tp)
		if err := writeFile(name+"-throughput.tsv", func(f *os.File) error {
			return metrics.WriteThroughputTSV(f, sim.Buckets)
		}); err != nil {
			return err
		}
		if err := writeFile(name+"-reference-throughput.tsv", func(f *os.File) error {
			return metrics.WriteThroughputTSV(f, ref.Buckets)
		}); err != nil {
			return err
		}
		genErr := metrics.MeanAbsPctError(series(sim.Buckets, false), series(ref.Buckets, false))
		promptErr := metrics.MeanAbsPctError(series(sim.Buckets, true), series(ref.Buckets, true))
		allErrs = append(allErrs, genErr, promptErr)
		fmt.Printf("%-10s TP%d  ref gen %7.1f tok/s  sim gen %7.1f tok/s  trend err prompt %.1f%% gen %.1f%%\n",
			c.model, c.tp, ref.GenTPS, sim.GenTPS, 100*promptErr, 100*genErr)
	}
	var sum float64
	for _, e := range allErrs {
		sum += e
	}
	fmt.Printf("average trend error %.1f%% (paper: 14.7%%)\n", 100*sum/float64(len(allErrs)))
	return nil
}

func series(b []metrics.Bucket, prompt bool) []float64 {
	out := make([]float64, len(b))
	for i := range b {
		if prompt {
			out[i] = b[i].PromptTPS
		} else {
			out[i] = b[i].GenTPS
		}
	}
	return out
}

// eval2 validates the NPU+PIM heterogeneous system against the analytic
// NeuPIMs model (Fig. 7).
func eval2() error {
	n := 256
	if *quick {
		n = 64
	}
	trace, err := workload.PoissonTrace(workload.Alpaca(), n, 64, 7)
	if err != nil {
		return err
	}
	configs := []struct {
		model  string
		tp, pp int
	}{
		{"gpt3-7b", 4, 1}, {"gpt3-7b", 2, 2},
		{"gpt3-13b", 8, 1}, {"gpt3-13b", 4, 2},
		{"gpt3-30b", 8, 2}, {"gpt3-30b", 4, 4},
	}
	var sims, refs []float64
	rows := "model\tscheme\tneupims_tps\tllmservingsim_tps\n"
	for _, c := range configs {
		topo, err := network.Build(network.Hybrid, c.tp*c.pp, c.pp, config.DefaultLink(), config.DefaultLink())
		if err != nil {
			return err
		}
		sim, err := core.New(core.Options{
			Model: model.MustLookup(c.model), Topo: topo,
			NPU: config.DefaultNPU(), PIM: config.DefaultPIM(),
			PIMMode: core.PIMLocal, Sched: sched.Config{SubBatches: 2},
			Reuse: core.ReuseAll(),
		}, trace)
		if err != nil {
			return err
		}
		rep, err := sim.Run()
		if err != nil {
			return err
		}
		simT := rep.PromptTPS + rep.GenTPS
		refT, err := baseline.NeuPIMsThroughput(baseline.NeuPIMsConfig{
			Model: model.MustLookup(c.model), NPU: config.DefaultNPU(), PIM: config.DefaultPIM(),
			TP: c.tp, PP: c.pp, SubBatch: true,
		}, trace)
		if err != nil {
			return err
		}
		sims, refs = append(sims, simT), append(refs, refT)
		rows += fmt.Sprintf("%s\tTP%d PP%d\t%.0f\t%.0f\n", c.model, c.tp, c.pp, refT, simT)
		fmt.Printf("%-10s TP%d PP%d  neupims %6.0f  llmservingsim %6.0f tok/s\n", c.model, c.tp, c.pp, refT, simT)
	}
	fmt.Printf("geomean error %.2f%% (paper: 8.88%%)\n", 100*metrics.GeomeanError(sims, refs))
	return writeFile("eval2-throughput.tsv", func(f *os.File) error {
		_, err := f.WriteString(rows)
		return err
	})
}

// eval3 measures one-iteration simulation time of the conventional
// simulators vs LLMServingSim (Fig. 8).
func eval3() error {
	models := []string{"gpt3-7b", "gpt3-13b", "gpt3-30b"}
	if *quick {
		models = models[:1]
	}
	rows := "model\tmnpusim_ms\tgenesys_ms\tneupims_ms\tllmservingsim_ms\n"
	for _, name := range models {
		m := model.MustLookup(name)
		walls := map[baseline.SlowMode]time.Duration{}
		for _, mode := range []baseline.SlowMode{baseline.MNPUsimMode, baseline.GeneSysMode, baseline.NeuPIMsMode} {
			r, err := baseline.SimulateIteration(mode, m, config.DefaultNPU(), config.DefaultPIM(), 32, 512)
			if err != nil {
				return err
			}
			walls[mode] = r.Wall
		}
		ours, err := oneIteration(name, 1, 1, 32, 512, core.ReuseOptions{ModelRedundancy: true})
		if err != nil {
			return err
		}
		rows += fmt.Sprintf("%s\t%.1f\t%.1f\t%.1f\t%.1f\n", name,
			ms(walls[baseline.MNPUsimMode]), ms(walls[baseline.GeneSysMode]),
			ms(walls[baseline.NeuPIMsMode]), ms(ours.Total()))
		fmt.Printf("%-10s mnpusim %8.0fms  genesys %7.0fms  neupims %7.0fms  llmservingsim %6.1fms  (%.0fx / %.0fx / %.0fx)\n",
			name, ms(walls[baseline.MNPUsimMode]), ms(walls[baseline.GeneSysMode]),
			ms(walls[baseline.NeuPIMsMode]), ms(ours.Total()),
			float64(walls[baseline.MNPUsimMode])/float64(ours.Total()),
			float64(walls[baseline.GeneSysMode])/float64(ours.Total()),
			float64(walls[baseline.NeuPIMsMode])/float64(ours.Total()))
	}
	return writeFile("eval3-simulation-time.tsv", func(f *os.File) error {
		_, err := f.WriteString(rows)
		return err
	})
}

// eval4 reproduces the reuse on/off component breakdown (Fig. 9).
func eval4() error {
	strategies := []struct{ tp, pp int }{{64, 1}, {16, 4}, {8, 8}, {4, 16}, {1, 64}}
	if *quick {
		strategies = strategies[:2]
	}
	rows := "strategy\treuse\tscheduler_ms\tengine_ms\tconverter_ms\tastra_ms\ttotal_ms\n"
	for _, s := range strategies {
		for _, reuse := range []bool{false, true} {
			ro := core.ReuseOptions{ModelRedundancy: reuse, ComputationReuse: reuse}
			h, err := oneIteration("gpt3-30b", s.tp, s.pp, 64, 1024, ro)
			if err != nil {
				return err
			}
			label := "w/o"
			if reuse {
				label = "w/"
			}
			rows += fmt.Sprintf("TP%d PP%d\t%s\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\n",
				s.tp, s.pp, label, ms(h.Scheduler), ms(h.ExecutionEngine),
				ms(h.GraphConverter), ms(h.AstraSim), ms(h.Total()))
			fmt.Printf("TP%-3d PP%-3d %-4s engine %7.0fms  convert %6.0fms  astra %6.0fms  total %7.0fms\n",
				s.tp, s.pp, label, ms(h.ExecutionEngine), ms(h.GraphConverter), ms(h.AstraSim), ms(h.Total()))
		}
	}
	return writeFile("eval4-simulation-time.tsv", func(f *os.File) error {
		_, err := f.WriteString(rows)
		return err
	})
}

// eval5 sweeps NPU counts for simulation-time scalability (Fig. 10).
func eval5() error {
	counts := []int{8, 16, 32, 64, 128, 256, 512, 1024, 2048}
	models := []string{"gpt3-7b", "gpt3-30b", "gpt3-175b"}
	if *quick {
		counts = []int{8, 64, 512}
		models = models[:2]
	}
	rows := "npus"
	for _, m := range models {
		rows += "\t" + m + "_ms"
	}
	rows += "\n"
	for _, n := range counts {
		rows += fmt.Sprintf("%d", n)
		fmt.Printf("%5d NPUs:", n)
		for _, name := range models {
			h, err := oneIteration(name, n, 1, 64, 1024,
				core.ReuseOptions{ModelRedundancy: true, ComputationReuse: false})
			if err != nil {
				return err
			}
			rows += fmt.Sprintf("\t%.1f", ms(h.Total()))
			fmt.Printf("  %s %7.0fms", name, ms(h.Total()))
		}
		fmt.Println()
		rows += "\n"
	}
	return writeFile("eval5-simulation-time.tsv", func(f *os.File) error {
		_, err := f.WriteString(rows)
		return err
	})
}

// oneIteration runs a single LLMServingSim iteration and returns the host
// component breakdown.
func oneIteration(modelName string, tp, pp, batch, seqLen int, reuse core.ReuseOptions) (metrics.ComponentTimes, error) {
	topo, err := network.Build(network.Hybrid, tp*pp, pp, config.DefaultLink(), config.DefaultLink())
	if err != nil {
		return metrics.ComponentTimes{}, err
	}
	m := model.MustLookup(modelName)
	npuCfg := config.DefaultNPU()
	perDev := m.WeightBytes()/int64(topo.NPUNodes()) + 32*config.GB
	if npuCfg.MemoryBytes < perDev {
		npuCfg.MemoryBytes = perDev
	}
	sim, err := core.New(core.Options{
		Model: m, Topo: topo, NPU: npuCfg, PIM: config.DefaultPIM(), Reuse: reuse,
	}, workload.UniformBatch(batch, seqLen, 1))
	if err != nil {
		return metrics.ComponentTimes{}, err
	}
	if _, _, err := sim.FirstIteration(); err != nil {
		return metrics.ComponentTimes{}, err
	}
	return sim.HostTimes(), nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
