// Command llmservingsim runs a serving simulation from the command line,
// exposing the artifact's simulation parameters (model_name, npu_num,
// max_batch, batch_delay, scheduling, parallel, npu_group, npu_mem,
// kv_manage, pim_type, sub_batch, dataset, network, output, gen,
// fast_run).
//
// Example:
//
//	llmservingsim -model gpt3-7b -npu-num 4 -parallel tensor \
//	    -dataset trace.tsv -output run1
//
// writes run1-throughput.tsv and run1-simulation-time.tsv and prints a
// summary to standard output. The enum-valued flags (-parallel,
// -scheduling, -kv-manage, -pim-type) are parsed into the package's
// typed policies, so invalid values fail at flag parsing. Interrupting
// the run (Ctrl-C) cancels the simulation at the next iteration
// boundary; -progress N prints a progress line every N iterations.
//
// Cluster mode (-replicas N with N > 1) fans the arrival stream out
// over N identical replicas through an admission gate (-admission,
// -admission-limit) and a routing policy (-router), printing per-class
// latency/SLO tables. Mixed traffic comes from -classes (optionally
// ramped with -ramp) or from a -dataset TSV with a class column:
//
//	llmservingsim -model gpt3-7b -npu-num 4 -replicas 8 \
//	    -router least-loaded -admission queue-cap -admission-limit 32 \
//	    -classes "chat:sharegpt:3:1000:80,api:alpaca:9:500:50" \
//	    -synth-n 512 -output cap
//
// Latency estimation is pluggable (-perf-model astra|roofline;
// -hardware names an accelerator preset, see -list-hardware), and
// -fleet describes a heterogeneous cluster of replica groups, e.g.
//
//	llmservingsim -model gpt3-7b -npu-num 4 \
//	    -fleet "2xgpt3-7b@rtx3090:roofline,2xgpt3-7b@a100:roofline" \
//	    -router least-loaded -classes "chat:sharegpt:6:1000:80" -synth-n 512
//
// Fleets can be dynamic: -autoscaler resizes the fleet every
// -scale-tick of simulated time between -min-replicas and
// -max-replicas (with -provision-delay of cold start per scale-up;
// the queue-depth policy reads -scale-target, slo-target reads
// -slo-scale-target, scheduled follows -scale-schedule "0:2,60:8"),
// and -fleet-events injects failures, planned scales, and graceful
// drains ("fail@30:2,scale@60:8,drain@90:0"). Either flag enables the
// cluster layer; -output then also writes the fleet-size timeline to
// *-fleet.tsv.
//
// A fleet whose groups carry #prefill / #decode role suffixes runs
// disaggregated: prefill replicas compute first tokens, then hand each
// request's KV cache to a decode replica over the interconnect
// (-decode-router places the decode stage; -autoscaler scales the two
// pools independently between -prefill-min/-prefill-max and
// -decode-min/-decode-max):
//
//	llmservingsim -model gpt2 -npu-num 2 \
//	    -fleet "2xgpt2#prefill,2xgpt2#decode" -decode-router least-loaded \
//	    -classes "chat:sharegpt:6:1000:80" -synth-n 512
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	llmservingsim "repro"
	"repro/internal/config"
)

func main() {
	cfg := llmservingsim.DefaultConfig()
	var (
		listModels   = flag.Bool("list-models", false, "print known models and exit")
		listHardware = flag.Bool("list-hardware", false, "print known hardware presets and exit")
		listPolicies = flag.Bool("list-policies", false, "print every policy registry (routers, admission, autoscalers, scheduling, perf models, prefix cache modes) and exit")
		npuMem       = flag.Int("npu-mem", 0, "NPU local memory in GB (0 = Table I default)")
		pimPool      = flag.Int("pim-pool", 0, "PIM pool size (pool mode; 0 = npu-num)")
		subBatch     = flag.Bool("sub-batch", false, "enable NeuPIMs sub-batch interleaving")
		noReuse      = flag.Bool("no-reuse", false, "disable all result-reuse optimisations")
		networkCfg   = flag.String("network", "", "JSON link config file (bandwidth/latency)")
		npuCfgPath   = flag.String("npu-config", "", "JSON NPU config file")
		dataset      = flag.String("dataset", "", "TSV request trace (input/output tokens + arrival ms)")
		synth        = flag.String("synth", "", "synthesise a trace instead: sharegpt|alpaca")
		synthN       = flag.Int("synth-n", 128, "synthetic trace request count")
		synthRate    = flag.Float64("synth-rate", 4, "synthetic Poisson arrival rate (req/s)")
		seed         = flag.Int64("seed", 1, "synthetic trace random seed")
		progress     = flag.Int("progress", 0, "print a progress line every N iterations (0 = off)")
		output       = flag.String("output", "", "output file prefix for TSV results")

		replicas     = flag.Int("replicas", 1, "cluster mode: number of serving replicas (>1 enables the cluster layer)")
		router       llmservingsim.RouterPolicy
		decodeRouter llmservingsim.RouterPolicy
		admission    llmservingsim.AdmissionPolicy
		autoscaler   llmservingsim.AutoscalePolicy
		admitLimit   = flag.Int64("admission-limit", 0, "admission bound: queued requests/replica (queue-cap) or cluster tokens (token-budget)")
		classSpec    = flag.String("classes", "", "traffic classes name:dist:rate[:ttft_ms[:tpot_ms[:prefix_toks]]],... (synthesises a mixed trace)")
		requests     = flag.Int("requests", 0, "request count for -classes/-synth traffic (overrides -synth-n; spelled for large -stream runs)")
		stream       = flag.Bool("stream", false, "pull -classes arrivals from the generator and stream per-request metrics: memory stays flat in the request count (enables the cluster layer)")
		shards       = flag.Int("shards", 0, "cluster mode: fan replica stepping over N worker goroutines, byte-identical to sequential (static unified fleets; enables the cluster layer)")
		rampSpec     = flag.String("ramp", "", "arrival-rate ramp from:to[:over_s] for -classes traffic")
		popSpec      = flag.String("population", "", "client population clients:rate_dist:skew[:diurnal_amp:diurnal_period_s[:burst_factor:burst_frac:burst_mean_s]] generating session traffic over -classes (enables the cluster layer)")
		sessSpecFlag = flag.String("sessions", "", "session structure mean_turns:think_mean_s:think_sigma[:max_context] for -population traffic (default 4:10:0.6:4096)")
		replayPath   = flag.String("replay", "", "replay a recorded trace file as the arrival source (versioned format; -classes still supplies SLO targets; enables the cluster layer)")
		recordPath   = flag.String("record-trace", "", "record the arrival stream to a versioned replay trace file")
		fleetSpec    = flag.String("fleet", "", "heterogeneous fleet COUNTxMODEL[@HARDWARE][:PERFMODEL][#ROLE],... (enables the cluster layer; #prefill/#decode pools disaggregate; see -list-hardware)")

		scaleTick    = flag.Duration("scale-tick", 10*time.Second, "autoscaler evaluation interval (simulated time)")
		minReplicas  = flag.Int("min-replicas", 0, "autoscaling floor (0 = 1)")
		maxReplicas  = flag.Int("max-replicas", 0, "autoscaling ceiling (0 = initial replicas)")
		scaleTarget  = flag.Int("scale-target", 8, "queue-depth autoscaler: target queued requests per replica")
		sloTarget    = flag.Float64("slo-scale-target", 0.95, "slo-target autoscaler: scale up below this interval attainment")
		sloHigh      = flag.Float64("slo-scale-high", 1, "slo-target autoscaler: scale down at or above this interval attainment")
		scaleSched   = flag.String("scale-schedule", "", "scheduled autoscaler: step plan T_S:REPLICAS,... (e.g. 0:2,60:8,120:2)")
		provision    = flag.Duration("provision-delay", 0, "cold-start delay of scaled-up replicas (simulated time)")
		prefillMin   = flag.Int("prefill-min", 0, "disaggregated autoscaling: prefill pool floor (0 = 1)")
		prefillMax   = flag.Int("prefill-max", 0, "disaggregated autoscaling: prefill pool ceiling (0 = initial pool size)")
		decodeMin    = flag.Int("decode-min", 0, "disaggregated autoscaling: decode pool floor (0 = 1)")
		decodeMax    = flag.Int("decode-max", 0, "disaggregated autoscaling: decode pool ceiling (0 = initial pool size)")
		fleetEvtSpec = flag.String("fleet-events", "", "fleet events fail@T:R[:reject]|scale@T:N|drain@T:R,... (enables the cluster layer)")

		traceOut     = flag.String("trace-out", "", "write a Chrome-trace JSON of the run (open in chrome://tracing or Perfetto)")
		decisionsOut = flag.String("decisions-out", "", "write routing/admission/autoscaling decision records as TSV")
		traceDetail  llmservingsim.TraceDetail

		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address while the simulation runs (e.g. localhost:6060)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the simulation to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Var(&traceDetail, "trace-detail", "telemetry capture level: decisions|spans|full")
	flag.Var(&autoscaler, "autoscaler", "fleet autoscaling policy: none|queue-depth|slo-target|scheduled")
	flag.Var(&cfg.PerfModel, "perf-model", "performance model: astra|roofline")
	flag.StringVar(&cfg.Hardware, "hardware", "", "accelerator preset the backend models (see -list-hardware)")
	flag.Var(&router, "router", "cluster routing policy: round-robin|least-loaded|affinity|prefix-affinity")
	flag.Var(&decodeRouter, "decode-router", "disaggregated clusters: decode-stage routing policy (same choices as -router)")
	flag.Var(&admission, "admission", "cluster admission policy: all|queue-cap|token-budget")
	flag.StringVar(&cfg.Model, "model", cfg.Model, "model name (see -list-models)")
	flag.IntVar(&cfg.NPUs, "npu-num", cfg.NPUs, "number of NPUs")
	flag.IntVar(&cfg.MaxBatch, "max-batch", 0, "maximum batch size (0 = unlimited)")
	flag.DurationVar(&cfg.BatchDelay, "batch-delay", 0, "delay to accumulate arrivals before batching")
	flag.Var(&cfg.Scheduling, "scheduling", "scheduling policy: orca|static|chunked")
	flag.IntVar(&cfg.PrefillChunk, "prefill-chunk", 0, "chunked scheduling: prompt tokens per prefill chunk (0 = 256)")
	flag.Var(&cfg.PrefixCache, "prefix-cache", "shared-prefix KV caching: off|gpu|tiered")
	flag.Float64Var(&cfg.KVHostMemGB, "kv-host-mem", 0, "tiered prefix cache: host spill tier size in GB (0 = unbounded)")
	flag.Var(&cfg.Parallelism, "parallel", "parallelism: tensor|pipeline|hybrid")
	flag.IntVar(&cfg.NPUGroups, "npu-group", cfg.NPUGroups, "NPU group count for hybrid parallelism")
	flag.Var(&cfg.KVManage, "kv-manage", "KV cache management: vllm|maxlen")
	flag.Var(&cfg.PIMType, "pim-type", "PIM usage: none|local|pool")
	flag.BoolVar(&cfg.SelectiveBatching, "selective", false, "enable selective batching across TP workers")
	flag.BoolVar(&cfg.UseGPUEngine, "gpu", false, "use the GPU reference engine instead of the NPU")
	flag.BoolVar(&cfg.SkipInitiation, "gen", false, "skip the initiation phase (generation only)")
	flag.Parse()

	if *listModels {
		for _, m := range llmservingsim.Models() {
			fmt.Println(m)
		}
		return
	}
	if *listHardware {
		for _, h := range llmservingsim.Hardwares() {
			fmt.Println(h)
		}
		return
	}
	if *listPolicies {
		for _, reg := range []struct {
			name  string
			items []string
		}{
			{"router", llmservingsim.Routers()},
			{"admission", llmservingsim.Admissions()},
			{"autoscaler", llmservingsim.Autoscalers()},
			{"scheduling", llmservingsim.SchedPolicies()},
			{"perf-model", llmservingsim.PerfModels()},
			{"prefix-cache", llmservingsim.PrefixCacheModes()},
		} {
			for _, item := range reg.items {
				fmt.Printf("%s\t%s\n", reg.name, item)
			}
		}
		return
	}

	var fleet []llmservingsim.ReplicaSpec
	if *fleetSpec != "" {
		var err error
		if fleet, err = llmservingsim.ParseFleet(*fleetSpec); err != nil {
			fatal(err)
		}
	}
	var fleetEvents []llmservingsim.FleetEvent
	if *fleetEvtSpec != "" {
		var err error
		if fleetEvents, err = llmservingsim.ParseFleetEvents(*fleetEvtSpec); err != nil {
			fatal(err)
		}
	}
	var scaleSchedule []llmservingsim.ScalePoint
	if *scaleSched != "" {
		var err error
		if scaleSchedule, err = llmservingsim.ParseScaleSchedule(*scaleSched); err != nil {
			fatal(err)
		}
	}

	cfg.PIMPoolSize = *pimPool
	if *subBatch {
		cfg.SubBatches = 2
	}
	if *noReuse {
		cfg.ModelRedundancyReuse = false
		cfg.ComputationReuse = false
	}
	if *npuMem > 0 {
		cfg.NPU.MemoryBytes = int64(*npuMem) * config.GB
	}
	if *networkCfg != "" {
		if err := config.LoadJSON(*networkCfg, &cfg.Link); err != nil {
			fatal(err)
		}
	}
	if *npuCfgPath != "" {
		if err := config.LoadJSON(*npuCfgPath, &cfg.NPU); err != nil {
			fatal(err)
		}
	}
	if *progress > 0 && !*stream {
		// Streaming runs report request-level progress through the
		// arrival stream instead (see progressStream below).
		every := *progress
		cfg.OnIteration = func(it llmservingsim.Iteration) {
			if (it.Index+1)%every == 0 {
				fmt.Fprintf(os.Stderr, "iteration %d  batch %d  sim clock %.2fs\n",
					it.Index+1, it.BatchSize, it.ClockSec)
			}
		}
	}

	var classes []llmservingsim.TrafficClass
	if *classSpec != "" {
		var err error
		if classes, err = llmservingsim.ParseTrafficClasses(*classSpec); err != nil {
			fatal(err)
		}
	}
	if *requests > 0 {
		*synthN = *requests
	}
	var ramp llmservingsim.Ramp
	if *rampSpec != "" {
		var err error
		if ramp, err = llmservingsim.ParseRamp(*rampSpec); err != nil {
			fatal(err)
		}
	}

	var pop llmservingsim.PopulationSpec
	sessions := llmservingsim.DefaultSessionSpec()
	if *sessSpecFlag != "" && *popSpec == "" {
		fatal(fmt.Errorf("-sessions structures -population traffic; give -population too"))
	}
	if *popSpec != "" {
		if *classSpec == "" {
			fatal(fmt.Errorf("-population apportions clients over -classes traffic; give -classes too"))
		}
		var err error
		if pop, err = llmservingsim.ParsePopulation(*popSpec); err != nil {
			fatal(err)
		}
		if *sessSpecFlag != "" {
			if sessions, err = llmservingsim.ParseSessionSpec(*sessSpecFlag); err != nil {
				fatal(err)
			}
		}
	}

	var trace []llmservingsim.Request
	var arrivals llmservingsim.RequestStream
	var err error
	switch {
	case *replayPath != "" && *stream:
		var rs *llmservingsim.ReplayStream
		if rs, err = llmservingsim.OpenReplayTrace(*replayPath); err == nil {
			defer rs.Close()
			arrivals = rs
			if *progress > 0 {
				arrivals = &progressStream{inner: rs, every: *progress}
			}
		}
	case *replayPath != "":
		trace, err = llmservingsim.LoadReplayTrace(*replayPath)
	case *stream && *popSpec != "":
		var ps *llmservingsim.PopulationStream
		if ps, err = llmservingsim.NewPopulationStream(classes, pop, sessions, *synthN, *seed); err == nil {
			arrivals = ps
			if *progress > 0 {
				arrivals = &progressStream{inner: ps, every: *progress, target: ps.Target()}
			}
		}
	case *stream:
		if *classSpec == "" {
			err = fmt.Errorf("-stream requires -classes traffic (the generator is the stream)")
			break
		}
		var ms *llmservingsim.MultiClassStream
		if ms, err = llmservingsim.NewMultiClassStream(classes, *synthN, ramp, *seed); err == nil {
			arrivals = ms
			if *progress > 0 {
				arrivals = &progressStream{inner: ms, every: *progress, target: ms.Target()}
			}
		}
	case *popSpec != "":
		trace, err = llmservingsim.PopulationTrace(classes, pop, sessions, *synthN, *seed)
	case *dataset != "":
		trace, err = llmservingsim.LoadTrace(*dataset)
	case *classSpec != "":
		trace, err = llmservingsim.MultiClassTrace(classes, *synthN, ramp, *seed)
	case *synth == "sharegpt":
		trace, err = llmservingsim.ShareGPTTrace(*synthN, *synthRate, *seed)
	case *synth == "alpaca":
		trace, err = llmservingsim.AlpacaTrace(*synthN, *synthRate, *seed)
	default:
		err = fmt.Errorf("provide -dataset FILE, -classes SPEC, -population SPEC, -replay FILE, or -synth sharegpt|alpaca")
	}
	if err != nil {
		fatal(err)
	}

	var recordClose func() error
	if *recordPath != "" {
		gen := generatorFingerprint()
		if arrivals != nil {
			// Streaming source: tee every request as the engine pulls it.
			rec, closeFn, err := llmservingsim.RecordReplayFile(*recordPath, arrivals, gen)
			if err != nil {
				fatal(err)
			}
			arrivals, recordClose = rec, closeFn
		} else {
			if err := llmservingsim.SaveReplayTrace(*recordPath, trace, gen); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "recorded %d requests to %s\n", len(trace), *recordPath)
		}
	}
	defer func() {
		if recordClose != nil {
			if err := recordClose(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "recorded trace to %s\n", *recordPath)
		}
	}()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "llmservingsim: pprof listener:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/\n", *pprofAddr)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		// Runs on normal return from main (both the single-instance and
		// cluster paths); error exits skip the profile.
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	var tel *llmservingsim.Telemetry
	if *traceOut != "" || *decisionsOut != "" {
		tel = llmservingsim.NewTelemetry(llmservingsim.TelemetryConfig{Detail: traceDetail})
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		// After the first interrupt starts the graceful stop, restore
		// default SIGINT handling so a second Ctrl-C force-quits.
		<-ctx.Done()
		stop()
	}()

	if *replicas > 1 || len(fleet) > 0 || len(fleetEvents) > 0 || autoscaler != llmservingsim.ScaleNone ||
		*stream || *shards > 1 || *popSpec != "" || *replayPath != "" {
		sc := llmservingsim.ClusterScenario{
			Name:               "cli",
			Config:             cfg,
			Replicas:           *replicas,
			Router:             router,
			DecodeRouter:       decodeRouter,
			Admission:          admission,
			AdmissionLimit:     *admitLimit,
			Classes:            classes,
			Trace:              trace,
			Autoscaler:         autoscaler,
			ScaleTick:          *scaleTick,
			MinReplicas:        *minReplicas,
			MaxReplicas:        *maxReplicas,
			ScaleQueueTarget:   *scaleTarget,
			ScaleSLOTarget:     *sloTarget,
			ScaleSLOHigh:       *sloHigh,
			ScaleSchedule:      scaleSchedule,
			ProvisionDelay:     *provision,
			PrefillMinReplicas: *prefillMin,
			PrefillMaxReplicas: *prefillMax,
			DecodeMinReplicas:  *decodeMin,
			DecodeMaxReplicas:  *decodeMax,
			FleetEvents:        fleetEvents,
			Telemetry:          tel,
			TraceStream:        arrivals,
			StreamMetrics:      *stream,
			Shards:             *shards,
		}
		if *stream && *shards <= 1 && *output != "" {
			// Stream the per-request table as requests complete; the
			// post-hoc dump has no retained records to write from.
			// (Sharded runs complete out of ID order across shards, so
			// they skip the table; Validate rejects the combination.)
			f, err := os.Create(*output + "-requests.tsv")
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			sc.RequestsOut = f
		}
		if len(fleet) > 0 {
			sc.Fleet = fleet
			replicasSet := false
			flag.Visit(func(f *flag.Flag) { replicasSet = replicasSet || f.Name == "replicas" })
			if !replicasSet {
				// -replicas was not given: derive the count from the
				// fleet. An explicit -replicas value must match the
				// fleet total (Validate enforces it).
				sc.Replicas = 0
			}
		}
		runCluster(ctx, sc, *output)
		writeTelemetry(tel, *traceOut, *decisionsOut)
		return
	}

	cfg.Telemetry = tel
	sim, err := llmservingsim.NewFromConfig(cfg, trace)
	if err != nil {
		fatal(err)
	}

	start := time.Now()
	rep, err := sim.RunContext(ctx)
	interrupted := false
	if errors.Is(err, context.Canceled) {
		// Graceful interrupt: report the iterations completed so far.
		interrupted = true
		rep = sim.Report()
	} else if err != nil {
		fatal(err)
	}

	if interrupted {
		fmt.Printf("interrupted      after %d iterations (partial results)\n", rep.Iterations)
	}
	fmt.Printf("model            %s\n", rep.Model)
	fmt.Printf("topology         %s\n", rep.Topology)
	fmt.Printf("perf model       %s\n", rep.Backend)
	fmt.Printf("requests         %d\n", rep.Latency.Count)
	fmt.Printf("iterations       %d\n", rep.Iterations)
	fmt.Printf("simulated time   %.2f s\n", rep.SimEndSec)
	fmt.Printf("prompt tput      %.1f tok/s\n", rep.PromptTPS)
	fmt.Printf("gen tput         %.1f tok/s\n", rep.GenTPS)
	fmt.Printf("mean latency     %.3f s (p50 %.3f, p95 %.3f, p99 %.3f, ttft %.3f, tpot %.4f)\n",
		rep.Latency.MeanSec, rep.Latency.P50Sec, rep.Latency.P95Sec, rep.Latency.P99Sec,
		rep.Latency.TTFTSec, rep.Latency.TPOTSec)
	fmt.Printf("kv evict/reload  %d / %d\n", rep.KV.Evictions, rep.KV.Reloads)
	fmt.Printf("cache hit rate   %.1f %%\n", 100*rep.EngineCacheHitRate)
	fmt.Printf("simulation time  %v (sched %v, engine %v, convert %v, astra %v)\n",
		time.Since(start).Round(time.Millisecond),
		rep.SimTime.Scheduler.Round(time.Millisecond),
		rep.SimTime.ExecutionEngine.Round(time.Millisecond),
		rep.SimTime.GraphConverter.Round(time.Millisecond),
		rep.SimTime.AstraSim.Round(time.Millisecond))

	if *output != "" {
		if err := writeTSVs(*output, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s-throughput.tsv, %s-simulation-time.tsv\n", *output, *output)
	}
	writeTelemetry(tel, *traceOut, *decisionsOut)
}

// writeTelemetry exports the run's captured telemetry to the requested
// files; a nil recorder (no -trace-out/-decisions-out) is a no-op.
func writeTelemetry(tel *llmservingsim.Telemetry, traceOut, decisionsOut string) {
	if tel == nil {
		return
	}
	write := func(path, what string, fn func(io.Writer) error) {
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := fn(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%s)\n", path, what)
	}
	if traceOut != "" {
		write(traceOut, fmt.Sprintf("chrome trace: %d events, %d decisions",
			tel.Events(), tel.Decisions()), tel.WriteChromeTrace)
	}
	if decisionsOut != "" {
		write(decisionsOut, fmt.Sprintf("%d decisions", tel.Decisions()), tel.WriteDecisionsTSV)
	}
}

// runCluster executes the multi-replica path and prints the cluster
// summary with a per-class SLO table.
func runCluster(ctx context.Context, sc llmservingsim.ClusterScenario, output string) {
	start := time.Now()
	rep, err := sc.RunContext(ctx)
	if errors.Is(err, context.Canceled) {
		fatal(fmt.Errorf("interrupted before the cluster run completed"))
	} else if err != nil {
		fatal(err)
	}

	fmt.Printf("model            %s\n", rep.Model)
	fmt.Printf("topology         %s\n", rep.Topology)
	fmt.Printf("router           %s\n", rep.Router)
	if rep.DecodeRouter != "" {
		fmt.Printf("decode router    %s\n", rep.DecodeRouter)
	}
	fmt.Printf("admission        %s\n", rep.Admission)
	if rep.Scaler != "" {
		fmt.Printf("autoscaler       %s (peak %d replicas)\n", rep.Scaler, rep.PeakReplicas())
	}
	if rep.Requeued > 0 {
		fmt.Printf("requeued         %d (moved off failed/draining replicas)\n", rep.Requeued)
	}
	fmt.Printf("requests         %d (admitted %d, rejected %d)\n", rep.Requests, rep.Admitted, rep.Rejected)
	fmt.Printf("iterations       %d across %d replicas\n", rep.TotalIterations(), rep.Replicas)
	fmt.Printf("replica seconds  %.1f (cost proxy %.1f)\n", rep.ReplicaSeconds, rep.CostProxy)
	for _, p := range rep.Pools {
		fmt.Printf("%-7s pool     %d slots, %d placements, %.1f replica s (cost proxy %.1f), goodput %.1f tok/s\n",
			p.Role, p.Slots, p.Requests, p.ReplicaSeconds, p.CostProxy, p.GoodputTPS)
	}
	if rep.HandoffCount > 0 {
		fmt.Printf("kv handoffs      %d transfers, %d B over the interconnect (%.3f s link time)\n",
			rep.HandoffCount, rep.HandoffBytes, rep.HandoffLinkSeconds)
	}
	fmt.Printf("simulated time   %.2f s\n", rep.SimEndSec)
	fmt.Printf("prompt tput      %.1f tok/s\n", rep.PromptTPS)
	fmt.Printf("gen tput         %.1f tok/s (goodput %.1f tok/s)\n", rep.ThroughputTPS, rep.GoodputTPS)
	if rep.PrefixTokensSaved > 0 || rep.PrefixHitRate > 0 {
		fmt.Printf("prefix cache     %.1f %% hit rate, %d tokens saved, %d B spilled / %d B reloaded (%.3f s link time)\n",
			100*rep.PrefixHitRate, rep.PrefixTokensSaved,
			rep.PrefixSpillBytes, rep.PrefixReloadBytes, rep.PrefixLinkSeconds)
	}
	fmt.Printf("mean latency     %.3f s (p50 %.3f, p95 %.3f, p99 %.3f, ttft %.3f, tpot %.4f)\n",
		rep.Latency.MeanSec, rep.Latency.P50Sec, rep.Latency.P95Sec, rep.Latency.P99Sec,
		rep.Latency.TTFTSec, rep.Latency.TPOTSec)
	if ss := rep.Sessions; ss != nil {
		fmt.Printf("sessions         %d (%d completed, %d attained), %d turns (%d rejected)\n",
			ss.Sessions, ss.Completed, ss.Attained, ss.Turns, ss.TurnsRejected)
		fmt.Printf("session ttft     turn 1 p50 %.3fs p99 %.3fs, later turns p50 %.3fs p99 %.3fs\n",
			ss.FirstTurnTTFT.P50Sec, ss.FirstTurnTTFT.P99Sec,
			ss.LaterTurnTTFT.P50Sec, ss.LaterTurnTTFT.P99Sec)
		fmt.Printf("session goodput  %.1f tok/s (%d tokens from completed turns)\n",
			ss.GoodputTPS, ss.OutputTokens)
	}
	if rg := rep.Regret; rg != nil {
		fmt.Printf("routing regret   %d/%d decisions regretful (%.1f %%), mean %.4f s, max %.4f s\n",
			rg.Regretful, rg.Decisions, 100*rg.RegretfulFrac(), rg.MeanRegretSec, rg.MaxRegretSec)
	}
	fmt.Printf("wall clock       %v\n", time.Since(start).Round(time.Millisecond))
	if len(rep.Classes) > 0 {
		fmt.Printf("\n%-12s %9s %9s %9s %12s %12s %12s %12s\n",
			"class", "requests", "rejected", "attained", "p50 ttft", "p99 ttft", "mean tpot", "goodput t/s")
		for _, cs := range rep.Classes {
			name := cs.Class
			if name == "" {
				name = "-"
			}
			fmt.Printf("%-12s %9d %9d %9d %11.3fs %11.3fs %11.4fs %12.1f\n",
				name, cs.Requests, cs.Rejected, cs.SLOAttained,
				cs.TTFT.P50Sec, cs.TTFT.P99Sec, cs.TPOT.MeanSec, cs.GoodputTPS)
		}
	}

	if output != "" {
		files := []struct {
			suffix string
			write  func(io.Writer) error
		}{
			{"-classes.tsv", rep.WriteClassTSV},
			{"-requests.tsv", rep.WriteRequestsTSV},
			{"-replicas.tsv", rep.WriteReplicaTSV},
			{"-fleet.tsv", rep.WriteFleetTSV},
		}
		if sc.StreamMetrics {
			// No retained records to dump post-hoc; when RequestsOut was
			// wired the table already streamed row by row during the run
			// (and the post-hoc create would truncate it).
			files = append(files[:1], files[2:]...)
		}
		names := make([]string, len(files))
		for i, f := range files {
			names[i] = output + f.suffix
			out, err := os.Create(output + f.suffix)
			if err != nil {
				fatal(err)
			}
			if err := f.write(out); err != nil {
				out.Close()
				fatal(err)
			}
			if err := out.Close(); err != nil {
				fatal(err)
			}
		}
		if sc.RequestsOut != nil {
			names = append(names, output+"-requests.tsv (streamed)")
		}
		fmt.Printf("wrote %s\n", strings.Join(names, ", "))
	}
}

// generatorFingerprint renders the workload-shaping flags the user set
// into the replay-trace header, so a recorded trace names the exact
// generator configuration that produced it. flag.Visit iterates in
// lexical order, so the fingerprint is deterministic for a given
// command line.
func generatorFingerprint() string {
	parts := []string{"llmservingsim", "v" + llmservingsim.Version}
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "classes", "dataset", "population", "ramp", "replay", "requests",
			"seed", "sessions", "stream", "synth", "synth-n", "synth-rate":
			parts = append(parts, "-"+f.Name+"="+f.Value.String())
		}
	})
	return strings.Join(parts, " ")
}

// progressStream decorates an arrival stream with request-count
// progress reporting against the stream's declared target — the
// streaming analogue of the per-iteration -progress hook (which needs
// a materialized report to be useful at million-request scale).
type progressStream struct {
	inner  llmservingsim.RequestStream
	every  int
	target int
	n      int
}

func (p *progressStream) Next() (llmservingsim.Request, bool) {
	r, ok := p.inner.Next()
	if !ok {
		return r, ok
	}
	p.n++
	if p.n%p.every == 0 {
		if p.target > 0 {
			fmt.Fprintf(os.Stderr, "request %d/%d  sim clock %.2fs\n", p.n, p.target, r.Arrival.Seconds())
		} else {
			fmt.Fprintf(os.Stderr, "request %d  sim clock %.2fs\n", p.n, r.Arrival.Seconds())
		}
	}
	return r, ok
}

// Err and Target forward the engine's optional stream probes.
func (p *progressStream) Err() error {
	if e, ok := p.inner.(interface{ Err() error }); ok {
		return e.Err()
	}
	return nil
}

func (p *progressStream) Target() int { return p.target }

func writeTSVs(prefix string, rep *llmservingsim.Report) error {
	tf, err := os.Create(prefix + "-throughput.tsv")
	if err != nil {
		return err
	}
	defer tf.Close()
	if err := rep.WriteThroughputTSV(tf); err != nil {
		return err
	}
	sf, err := os.Create(prefix + "-simulation-time.tsv")
	if err != nil {
		return err
	}
	defer sf.Close()
	return rep.WriteSimulationTimeTSV(sf)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "llmservingsim:", err)
	os.Exit(1)
}
