// Command benchdiff compares `go test -bench` output against a committed
// baseline (BENCH_hotpath.json) and fails on regressions — the CI guard
// that keeps the simulator's hot paths from quietly getting slower.
//
// Usage:
//
//	go test -run=NONE -bench ... -benchtime=1x -count=3 ./internal/... |
//	    go run ./cmd/benchdiff -baseline BENCH_hotpath.json
//
// Benchmark output is read from stdin; when a benchmark appears several
// times (-count=N) the minimum per metric is used, which rejects
// scheduler noise. Three metrics are compared per benchmark: ns/op
// (hardware-dependent — regenerate the baseline when the reference
// machine changes), allocs/op, and B/op (both stable across machines,
// so a genuine algorithmic regression fails CI deterministically; B/op
// additionally catches same-count-but-bigger allocations, e.g. a
// record table regrowing in a streaming run). Only benchmarks present
// in the baseline entry participate.
//
// -update appends a fresh entry (the measured minima) to the baseline
// file instead of comparing, for refreshing the baseline after an
// intentional performance change.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

type baseline struct {
	Note         string  `json:"note,omitempty"`
	BenchCommand string  `json:"benchCommand,omitempty"`
	Entries      []entry `json:"entries"`
}

type entry struct {
	Label      string                 `json:"label"`
	Benchmarks map[string]measurement `json:"benchmarks"`
}

type measurement struct {
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is a pointer so that "benchmark reached 0 allocs/op"
	// stays distinguishable from "no allocation data recorded" — a zero
	// baseline must still gate regressions away from zero.
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// BytesPerOp follows the same convention; older baseline entries
	// predate the field and simply don't gate on it.
	BytesPerOp *float64 `json:"bytes_per_op,omitempty"`
}

// benchLine matches e.g.
// "BenchmarkFoo/case=1-8   3   12345 ns/op   678 B/op   9 allocs/op";
// the -N GOMAXPROCS suffix is optional and stripped, and the B/op and
// allocs/op columns only appear under -benchmem/ReportAllocs.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op\s+([0-9.]+) allocs/op)?`)

func main() {
	baselinePath := flag.String("baseline", "BENCH_hotpath.json", "baseline JSON file")
	entryLabel := flag.String("entry", "", "baseline entry label to compare against (default: newest)")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional ns/op slowdown before failing")
	allocTolerance := flag.Float64("alloc-tolerance", 0.20, "allowed fractional allocs/op growth before failing")
	byteTolerance := flag.Float64("byte-tolerance", 0.20, "allowed fractional B/op growth before failing")
	update := flag.Bool("update", false, "append measured results as a new baseline entry instead of comparing")
	label := flag.String("label", "updated", "entry label used with -update")
	flag.Parse()

	measured, err := parseBench(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(measured) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", *baselinePath, err))
	}

	if *update {
		base.Entries = append(base.Entries, entry{Label: *label, Benchmarks: measured})
		out, err := json.MarshalIndent(&base, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*baselinePath, append(out, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchdiff: appended entry %q (%d benchmarks) to %s\n", *label, len(measured), *baselinePath)
		return
	}

	ref, err := pickEntry(&base, *entryLabel)
	if err != nil {
		fatal(err)
	}

	names := make([]string, 0, len(ref.Benchmarks))
	for name := range ref.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Printf("benchdiff: comparing against %q (ns/op %+.0f%%, allocs/op %+.0f%%, B/op %+.0f%%)\n",
		ref.Label, *tolerance*100, *allocTolerance*100, *byteTolerance*100)
	failed, missing := 0, 0
	for _, name := range names {
		want := ref.Benchmarks[name]
		got, ok := measured[name]
		if !ok {
			fmt.Printf("  MISSING  %-55s (in baseline, not measured)\n", name)
			missing++
			continue
		}
		status := "ok"
		nsRatio := got.NsPerOp / want.NsPerOp
		if nsRatio > 1+*tolerance {
			status = "TIME-REGRESSION"
			failed++
		}
		wantAllocs, gotAllocs := 0.0, 0.0
		if want.AllocsPerOp != nil && got.AllocsPerOp != nil {
			wantAllocs, gotAllocs = *want.AllocsPerOp, *got.AllocsPerOp
			// The small absolute slack keeps near-zero baselines from
			// failing on measurement jitter while still gating a
			// regression away from an allocation-free steady state.
			if gotAllocs > wantAllocs*(1+*allocTolerance)+16 {
				status = "ALLOC-REGRESSION"
				failed++
			}
		}
		wantBytes, gotBytes := 0.0, 0.0
		if want.BytesPerOp != nil && got.BytesPerOp != nil {
			wantBytes, gotBytes = *want.BytesPerOp, *got.BytesPerOp
			// Wider absolute slack than allocs: a single extra slice
			// header or map bucket is tens-to-thousands of bytes.
			if gotBytes > wantBytes*(1+*byteTolerance)+4096 {
				status = "BYTE-REGRESSION"
				failed++
			}
		}
		fmt.Printf("  %-16s %-55s %14.0f -> %14.0f ns/op (%+.1f%%)  %10.0f -> %10.0f allocs/op  %12.0f -> %12.0f B/op\n",
			status, name, want.NsPerOp, got.NsPerOp, (nsRatio-1)*100, wantAllocs, gotAllocs, wantBytes, gotBytes)
	}
	if missing > 0 {
		fatal(fmt.Errorf("%d baseline benchmark(s) were not measured — run the full bench command", missing))
	}
	if failed > 0 {
		fatal(fmt.Errorf("%d benchmark metric(s) regressed beyond tolerance", failed))
	}
	fmt.Println("benchdiff: no regressions")
}

// parseBench extracts per-benchmark minima from go test output.
func parseBench(f *os.File) (map[string]measurement, error) {
	out := map[string]measurement{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", sc.Text(), err)
		}
		cur := measurement{NsPerOp: ns}
		if m[3] != "" {
			bytes, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				return nil, fmt.Errorf("parsing %q: %w", sc.Text(), err)
			}
			allocs, err := strconv.ParseFloat(m[4], 64)
			if err != nil {
				return nil, fmt.Errorf("parsing %q: %w", sc.Text(), err)
			}
			cur.BytesPerOp = &bytes
			cur.AllocsPerOp = &allocs
		}
		prev, seen := out[m[1]]
		if !seen {
			out[m[1]] = cur
			continue
		}
		if cur.NsPerOp < prev.NsPerOp {
			prev.NsPerOp = cur.NsPerOp
		}
		if cur.AllocsPerOp != nil && (prev.AllocsPerOp == nil || *cur.AllocsPerOp < *prev.AllocsPerOp) {
			prev.AllocsPerOp = cur.AllocsPerOp
		}
		if cur.BytesPerOp != nil && (prev.BytesPerOp == nil || *cur.BytesPerOp < *prev.BytesPerOp) {
			prev.BytesPerOp = cur.BytesPerOp
		}
		out[m[1]] = prev
	}
	return out, sc.Err()
}

func pickEntry(b *baseline, label string) (*entry, error) {
	if len(b.Entries) == 0 {
		return nil, fmt.Errorf("baseline has no entries")
	}
	if label == "" {
		return &b.Entries[len(b.Entries)-1], nil
	}
	for i := range b.Entries {
		if b.Entries[i].Label == label {
			return &b.Entries[i], nil
		}
	}
	return nil, fmt.Errorf("baseline entry %q not found", label)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
