// Command tracegen synthesises request traces in the artifact's TSV
// format: ShareGPT-like conversational traffic, Alpaca-like instruction
// traffic, or fixed-shape batches, with Poisson or burst arrivals.
//
// Example:
//
//	tracegen -dist sharegpt -n 256 -rate 5 -seed 7 -o trace.tsv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/workload"
)

func main() {
	var (
		dist = flag.String("dist", "sharegpt", "length distribution: sharegpt|alpaca|fixed")
		n    = flag.Int("n", 256, "request count")
		rate = flag.Float64("rate", 4, "Poisson arrival rate in requests/second (0 = burst at t=0)")
		seed = flag.Int64("seed", 1, "random seed")
		in   = flag.Int("in", 512, "input tokens (fixed distribution)")
		out  = flag.Int("out", 128, "output tokens (fixed distribution)")
		o    = flag.String("o", "", "output TSV path (default stdout)")
		show = flag.Bool("stats", false, "print trace statistics to stderr")
	)
	flag.Parse()

	var d workload.LengthDist
	switch *dist {
	case "sharegpt":
		d = workload.ShareGPT()
	case "alpaca":
		d = workload.Alpaca()
	case "fixed":
		d = workload.Fixed(*in, *out)
	default:
		fatal(fmt.Errorf("unknown distribution %q", *dist))
	}

	var reqs []workload.Request
	var err error
	if *rate > 0 {
		reqs, err = workload.PoissonTrace(d, *n, *rate, *seed)
	} else {
		reqs, err = workload.BurstTrace(d, *n, *seed)
	}
	if err != nil {
		fatal(err)
	}

	if *show {
		s := workload.Summarize(reqs)
		fmt.Fprintf(os.Stderr, "requests %d, mean in/out %.1f/%.1f, p50 %d/%d, p95 %d/%d, span %v\n",
			s.Count, s.MeanInput, s.MeanOutput, s.P50Input, s.P50Output, s.P95Input, s.P95Output, s.Span)
	}

	w := os.Stdout
	if *o != "" {
		f, err := os.Create(*o)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := workload.WriteTSV(w, reqs); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
