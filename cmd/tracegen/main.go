// Command tracegen synthesises request traces in the versioned replay
// format (a "#repro-trace v1 generator=..." header over the artifact's
// TSV columns): ShareGPT-like conversational traffic, Alpaca-like
// instruction traffic, or fixed-shape batches, with Poisson or burst
// arrivals. Multi-class traffic mixes several classes into one trace
// and can ramp the arrival rate for saturation scans; -population adds
// a ServeGen-style client layer generating multi-turn session traffic
// over the classes. Feed the output back with llmservingsim -replay.
//
// Examples:
//
//	tracegen -dist sharegpt -n 256 -rate 5 -seed 7 -o trace.tsv
//	tracegen -classes "chat:sharegpt:3:1000:80,api:alpaca:9:500:50" \
//	    -ramp 0.5:2:120 -n 1024 -o mixed.tsv
//	tracegen -classes "chat:sharegpt:3:1000:80:256" \
//	    -population 200:zipf:1.2 -sessions 4:10:0.6 -n 4096 -o sessions.tsv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/workload"
)

func main() {
	var (
		dist     = flag.String("dist", "sharegpt", "length distribution: sharegpt|alpaca|fixed")
		classes  = flag.String("classes", "", "multi-class spec name:dist:rate[:ttft_ms[:tpot_ms[:prefix_toks]]],... (overrides -dist/-rate)")
		ramp     = flag.String("ramp", "", "arrival-rate ramp from:to[:over_s] (multi-class only)")
		popSpec  = flag.String("population", "", "client population clients:rate_dist:skew[:diurnal_amp:diurnal_period_s[:burst_factor:burst_frac:burst_mean_s]] generating session traffic over -classes")
		sessSpec = flag.String("sessions", "", "session structure mean_turns:think_mean_s:think_sigma[:max_context] for -population traffic (default 4:10:0.6:4096)")
		n        = flag.Int("n", 256, "request count")
		rate     = flag.Float64("rate", 4, "Poisson arrival rate in requests/second (0 = burst at t=0)")
		seed     = flag.Int64("seed", 1, "random seed")
		in       = flag.Int("in", 512, "input tokens (fixed distribution)")
		out      = flag.Int("out", 128, "output tokens (fixed distribution)")
		o        = flag.String("o", "", "output trace path (default stdout)")
		show     = flag.Bool("stats", false, "print trace statistics to stderr")
	)
	flag.Parse()

	var reqs []workload.Request
	var err error
	switch {
	case *popSpec != "":
		reqs, err = populationTrace(*classes, *popSpec, *sessSpec, *n, *seed)
	case *sessSpec != "":
		err = fmt.Errorf("-sessions requires -population")
	case *classes != "":
		reqs, err = multiClassTrace(*classes, *ramp, *n, *seed)
	case *ramp != "":
		err = fmt.Errorf("-ramp requires -classes")
	default:
		reqs, err = singleClassTrace(*dist, *n, *rate, *seed, *in, *out)
	}
	if err != nil {
		fatal(err)
	}

	if *show {
		s := workload.Summarize(reqs)
		fmt.Fprintf(os.Stderr, "requests %d, mean in/out %.1f/%.1f, p50 %d/%d, p95 %d/%d, span %v\n",
			s.Count, s.MeanInput, s.MeanOutput, s.P50Input, s.P50Output, s.P95Input, s.P95Output, s.Span)
		if names := workload.ClassNames(reqs); len(names) > 1 || (len(names) == 1 && names[0] != "") {
			counts := map[string]int{}
			for _, r := range reqs {
				counts[r.Class]++
			}
			for _, name := range names {
				fmt.Fprintf(os.Stderr, "class %-12s %d requests\n", name, counts[name])
			}
		}
	}

	w := os.Stdout
	if *o != "" {
		f, err := os.Create(*o)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := workload.WriteReplayTrace(w, reqs, generatorFingerprint()); err != nil {
		fatal(err)
	}
}

// generatorFingerprint renders the flags the user set into the trace
// header, so every emitted trace names the generator configuration
// that produced it. flag.Visit iterates in lexical order, so the
// fingerprint is deterministic for a given command line.
func generatorFingerprint() string {
	parts := []string{"tracegen", fmt.Sprintf("format=v%d", workload.ReplayVersion)}
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "o" || f.Name == "stats" {
			return // output plumbing, not generator configuration
		}
		parts = append(parts, "-"+f.Name+"="+f.Value.String())
	})
	return strings.Join(parts, " ")
}

// populationTrace layers a client population with multi-turn sessions
// over the spec'd classes — the same generator llmservingsim
// -population uses.
func populationTrace(classSpec, popSpec, sessSpec string, n int, seed int64) ([]workload.Request, error) {
	if classSpec == "" {
		return nil, fmt.Errorf("-population requires -classes")
	}
	cs, err := workload.ParseClasses(classSpec)
	if err != nil {
		return nil, err
	}
	pop, err := workload.ParsePopulation(popSpec)
	if err != nil {
		return nil, err
	}
	sess := workload.DefaultSessionSpec()
	if sessSpec != "" {
		if sess, err = workload.ParseSessionSpec(sessSpec); err != nil {
			return nil, err
		}
	}
	return workload.PopulationTrace(cs, pop, sess, n, seed)
}

// multiClassTrace mixes the spec'd classes, optionally under a rate
// ramp — the same generator cluster simulations use, so generated
// traces express mixed traffic without the cluster API.
func multiClassTrace(classSpec, rampSpec string, n int, seed int64) ([]workload.Request, error) {
	cs, err := workload.ParseClasses(classSpec)
	if err != nil {
		return nil, err
	}
	var r workload.Ramp
	if rampSpec != "" {
		if r, err = workload.ParseRamp(rampSpec); err != nil {
			return nil, err
		}
	}
	return workload.MultiClassTrace(cs, n, r, seed)
}

func singleClassTrace(dist string, n int, rate float64, seed int64, in, out int) ([]workload.Request, error) {
	var d workload.LengthDist
	switch dist {
	case "sharegpt":
		d = workload.ShareGPT()
	case "alpaca":
		d = workload.Alpaca()
	case "fixed":
		d = workload.Fixed(in, out)
	default:
		return nil, fmt.Errorf("unknown distribution %q", dist)
	}
	if rate > 0 {
		return workload.PoissonTrace(d, n, rate, seed)
	}
	return workload.BurstTrace(d, n, seed)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
