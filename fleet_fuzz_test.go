package llmservingsim

// Native fuzz target for the -fleet spec grammar, mirroring the
// ParseClasses/ParseRamp fuzz targets in internal/workload: anything the
// parser accepts must be a valid, usable fleet — specs validate, counts
// are positive, and the canonical rendering re-parses to the same fleet.

import "testing"

func FuzzParseFleet(f *testing.F) {
	seeds := []string{
		"2xgpt3-7b@rtx3090,2xgpt3-7b@a100:roofline",
		"1xgpt2",
		"4x@h100:roofline",
		"2xmoe-8x7b",
		" 3 x gpt2 @ rtx3090 ",
		"2xgpt2:astra",
		"0xgpt2",
		"-1xgpt2",
		"9223372036854775807xgpt2,9223372036854775807xgpt2",
		"2000000xgpt2",
		"NaNxgpt2",
		"+Infxgpt2",
		"1e300xgpt2",
		"2xgpt2@warpdrive",
		"2xgpt2@a100:psychic",
		"2xgpt2#prefill,2xgpt2#decode",
		"1xgpt2@a100:roofline#decode",
		"2xgpt2#unified",
		"2xgpt2# prefill ",
		"2xgpt2#",
		"2xgpt2#psychic",
		"2xgpt2#prefill#decode",
		"2xgpt2:astra#prefill",
		"x", ":", "@", ",,,",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		fleet, err := ParseFleet(spec)
		if err != nil {
			return
		}
		if len(fleet) == 0 {
			t.Fatal("accepted an empty fleet")
		}
		for i, rs := range fleet {
			if err := rs.Validate(); err != nil {
				t.Fatalf("accepted invalid spec %d %+v: %v", i, rs, err)
			}
			if rs.Count <= 0 {
				t.Fatalf("accepted non-positive count %d", rs.Count)
			}
		}
		if total := FleetReplicas(fleet); total <= 0 || total > MaxFleetReplicas*len(fleet) {
			t.Fatalf("fleet total %d out of range", total)
		}
		// The canonical rendering must re-parse to the same fleet.
		again, err := ParseFleet(FleetString(fleet))
		if err != nil {
			t.Fatalf("canonical form %q unparseable: %v", FleetString(fleet), err)
		}
		if len(again) != len(fleet) {
			t.Fatalf("round trip %d -> %d specs", len(fleet), len(again))
		}
		for i := range again {
			if again[i] != fleet[i] {
				t.Fatalf("round trip drifted at %d: %+v -> %+v", i, fleet[i], again[i])
			}
		}
	})
}
