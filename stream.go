package llmservingsim

// Streaming arrivals: the pull-based alternative to materializing a
// trace. A ClusterScenario given a TraceStream instead of a Trace pulls
// each request when the simulation reaches it, so the workload never
// exists as a slice — together with StreamMetrics this holds the
// engine's memory footprint flat in the request count (see the README's
// "Scaling to millions of requests").

import (
	"repro/internal/simtime"
	"repro/internal/workload"
)

// RequestStream is a pull-based arrival source. Next returns the
// following request, or false when the stream is exhausted. Arrivals
// must be non-decreasing; the engine rejects an out-of-order stream.
//
// A stream may optionally implement either of two probe methods:
//
//	Err() error  — a terminal generator error, checked after Next
//	               returns false (a false Next with a non-nil Err
//	               fails the run instead of ending it);
//	Target() int — the number of requests the stream intends to emit,
//	               used only for capacity hints.
type RequestStream interface {
	Next() (Request, bool)
}

// MultiClassStream generates the same arrival process as
// MultiClassTrace — a merged Poisson mix of the traffic classes, rates
// scaled by the ramp — one request at a time. Feeding it to a
// ClusterScenario via TraceStream is byte-identical to collecting it
// with MultiClassTrace first; only the memory footprint differs.
type MultiClassStream struct {
	inner *workload.MultiClassStream
}

// NewMultiClassStream returns the streaming form of
// MultiClassTrace(classes, n, ramp, seed).
func NewMultiClassStream(classes []TrafficClass, n int, ramp Ramp, seed int64) (*MultiClassStream, error) {
	wc, err := internalClasses(classes)
	if err != nil {
		return nil, err
	}
	s, err := workload.NewMultiClassStream(wc, n, ramp.internal(), seed)
	if err != nil {
		return nil, err
	}
	return &MultiClassStream{inner: s}, nil
}

// Next returns the following request of the mix.
func (s *MultiClassStream) Next() (Request, bool) {
	r, ok := s.inner.Next()
	if !ok {
		return Request{}, false
	}
	return publicRequest(r), true
}

// Err reports a terminal generator error (the arrival process
// overflowing the representable time range).
func (s *MultiClassStream) Err() error { return s.inner.Err() }

// Target returns the request count the stream was built for.
func (s *MultiClassStream) Target() int { return s.inner.Target() }

// streamAdapter lifts a public RequestStream into the internal stream
// form, forwarding the optional Err/Target probes. IDs are assigned by
// the engine in arrival order, exactly as toWorkload numbers a trace.
type streamAdapter struct {
	s RequestStream
}

func (a streamAdapter) Next() (workload.Request, bool) {
	r, ok := a.s.Next()
	if !ok {
		return workload.Request{}, false
	}
	return workload.Request{
		InputLen:     r.InputLen,
		OutputLen:    r.OutputLen,
		Arrival:      simtime.Time(simtime.FromStd(r.Arrival)),
		Class:        r.Class,
		PrefixLen:    r.PrefixLen,
		PrefixKey:    r.PrefixKey,
		Session:      r.Session,
		Turn:         r.Turn,
		SessionTurns: r.SessionTurns,
	}, true
}

func (a streamAdapter) Err() error {
	if e, ok := a.s.(interface{ Err() error }); ok {
		return e.Err()
	}
	return nil
}

func (a streamAdapter) Target() int {
	if t, ok := a.s.(interface{ Target() int }); ok {
		return t.Target()
	}
	return 0
}
