package llmservingsim_test

import (
	"fmt"

	llmservingsim "repro"
)

// ExampleNew shows the minimal simulation flow: build a trace, configure
// a system with functional options, run, and read the report. The
// workload here is fixed-shape so the output is deterministic.
func ExampleNew() {
	trace := llmservingsim.UniformTrace(4, 64, 8) // 4 requests, 64->8 tokens
	sim, err := llmservingsim.New(trace,
		llmservingsim.WithModel("gpt2"),
		llmservingsim.WithNPUs(2),
		llmservingsim.WithParallelism(llmservingsim.ParallelismTensor),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	rep, err := sim.Run()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("model=%s topology=%s requests=%d iterations=%d\n",
		rep.Model, rep.Topology, rep.Latency.Count, rep.Iterations)
	// Output: model=gpt2 topology=TP2 PP1 requests=4 iterations=8
}

// ExampleNewFromConfig configures the Fig. 5(a) NPU+PIM system with
// NeuPIMs-style sub-batch interleaving via an explicit Config — the
// artifact-style construction path.
func ExampleNewFromConfig() {
	cfg := llmservingsim.DefaultConfig()
	cfg.Model = "gpt2"
	cfg.NPUs = 2
	cfg.Parallelism = llmservingsim.ParallelismTensor
	cfg.PIMType = llmservingsim.PIMLocal
	cfg.SubBatches = 2

	sim, err := llmservingsim.NewFromConfig(cfg, llmservingsim.UniformTrace(4, 64, 4))
	if err != nil {
		fmt.Println(err)
		return
	}
	rep, err := sim.Run()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("completed %d requests on %s\n", rep.Latency.Count, rep.Topology)
	// Output: completed 4 requests on TP2 PP1
}

// ExampleSimulator_Step drives the simulator one iteration at a time —
// the run-control surface external drivers (servers, notebooks, tuners)
// use to interleave simulation with their own control flow.
func ExampleSimulator_Step() {
	sim, err := llmservingsim.New(llmservingsim.UniformTrace(2, 32, 4),
		llmservingsim.WithModel("gpt2"),
		llmservingsim.WithNPUs(2),
		llmservingsim.WithParallelism(llmservingsim.ParallelismTensor),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	steps := 0
	for {
		done, err := sim.Step()
		if err != nil {
			fmt.Println(err)
			return
		}
		if done {
			break
		}
		steps++
	}
	fmt.Printf("stepped %d iterations, report shows %d\n", steps, sim.Report().Iterations)
	// Output: stepped 4 iterations, report shows 4
}

// ExampleSweep fans a scenario grid out over the worker pool and reads
// the comparative report — the design-space-exploration use case the
// paper motivates the simulator with.
func ExampleSweep() {
	base := llmservingsim.DefaultConfig()
	base.Model = "gpt2"
	base.NPUs = 2
	base.Parallelism = llmservingsim.ParallelismTensor
	trace := llmservingsim.UniformTrace(4, 64, 8)

	scenarios := llmservingsim.Variants(base, trace,
		llmservingsim.Variant{Name: "npu-only"},
		llmservingsim.Variant{Name: "pim-local", Apply: func(c *llmservingsim.Config) {
			c.PIMType = llmservingsim.PIMLocal
		}},
	)
	report, err := llmservingsim.NewSweep(scenarios...).Run()
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, res := range report.Results {
		fmt.Printf("%s: %d requests in %d iterations\n",
			res.Name, res.Report.Latency.Count, res.Report.Iterations)
	}
	// Output:
	// npu-only: 4 requests in 8 iterations
	// pim-local: 4 requests in 8 iterations
}
