package llmservingsim_test

import (
	"fmt"

	llmservingsim "repro"
)

// ExampleNew shows the minimal simulation flow: configure a system, build
// a trace, run, and read the report. The workload here is fixed-shape so
// the output is deterministic.
func ExampleNew() {
	cfg := llmservingsim.DefaultConfig()
	cfg.Model = "gpt2"
	cfg.NPUs = 2
	cfg.Parallelism = "tensor"

	trace := llmservingsim.UniformTrace(4, 64, 8) // 4 requests, 64->8 tokens
	sim, err := llmservingsim.New(cfg, trace)
	if err != nil {
		fmt.Println(err)
		return
	}
	rep, err := sim.Run()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("model=%s topology=%s requests=%d iterations=%d\n",
		rep.Model, rep.Topology, rep.Latency.Count, rep.Iterations)
	// Output: model=gpt2 topology=TP2 PP1 requests=4 iterations=8
}

// ExampleConfig_heterogeneous configures the Fig. 5(a) NPU+PIM system
// with NeuPIMs-style sub-batch interleaving.
func ExampleConfig_heterogeneous() {
	cfg := llmservingsim.DefaultConfig()
	cfg.Model = "gpt2"
	cfg.NPUs = 2
	cfg.Parallelism = "tensor"
	cfg.PIMType = "local"
	cfg.SubBatches = 2

	sim, err := llmservingsim.New(cfg, llmservingsim.UniformTrace(4, 64, 4))
	if err != nil {
		fmt.Println(err)
		return
	}
	rep, err := sim.Run()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("completed %d requests on %s\n", rep.Latency.Count, rep.Topology)
	// Output: completed 4 requests on TP2 PP1
}
