package llmservingsim_test

// Disaggregated-serving suite: the prefill/decode split end to end.
// TestGoldenDisagg pins a fixed-seed disaggregated run — KV-handoff
// totals, per-pool placement, and the per-stage regret split — and
// proves the deployment's payoff: on a prefill-heavy workload the
// disaggregated fleet beats a unified fleet of the same size on p95
// TTFT at near-equal capacity cost. The remaining tests cover the
// failure paths: a prefill replica dying mid-run (stage-1 requeues), a
// decode replica dying (handoffs re-priced to survivors), and the
// decode pool vanishing entirely (no-replica rejects, no hangs).

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	sim "repro"
)

// disaggClasses is a prefill-heavy mix (long prompts, short outputs)
// whose TTFT is the contended metric: under static batching, unified
// replicas make new prompts wait for in-flight decode batches, which is
// exactly what a dedicated prefill pool avoids.
func disaggClasses() []sim.TrafficClass {
	return []sim.TrafficClass{
		{Name: "doc", Dist: "fixed-512-128", RatePerSec: 160,
			TTFT: 100 * time.Millisecond, TPOT: 20 * time.Millisecond},
		{Name: "snip", Dist: "fixed-384-48", RatePerSec: 80,
			TTFT: 60 * time.Millisecond, TPOT: 10 * time.Millisecond},
	}
}

func disaggTrace(t testing.TB) []sim.Request {
	t.Helper()
	reqs, err := sim.MultiClassTrace(disaggClasses(), 96, sim.Ramp{From: 0.8, To: 1.6}, 20240614)
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

// disaggConfig is a roofline-priced 2-NPU gpt2 replica under static
// batching — the regime where decode iterations block prompt admission
// on a unified replica.
func disaggConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Model = "gpt2"
	cfg.NPUs = 2
	cfg.Parallelism = sim.ParallelismTensor
	cfg.Scheduling = sim.SchedStatic
	cfg.KVManage = sim.KVPaged
	cfg.PerfModel = sim.PerfModelRoofline
	return cfg
}

func disaggScenario(t testing.TB, name string) sim.ClusterScenario {
	t.Helper()
	fleet, err := sim.ParseFleet("2xgpt2#prefill,2xgpt2#decode")
	if err != nil {
		t.Fatal(err)
	}
	return sim.ClusterScenario{
		Name:         name,
		Config:       disaggConfig(),
		DecodeRouter: sim.RouterLeastLoaded,
		Classes:      disaggClasses(),
		Trace:        disaggTrace(t),
	}.WithReplicaSpecs(fleet...).WithTelemetry(sim.NewTelemetry(sim.TelemetryConfig{Detail: sim.TraceFull}))
}

// disaggFingerprint extends the cluster fingerprint with the
// disaggregation dimensions: handoff totals, per-pool slots and
// placements, the per-stage regret split, and the workload's p95 TTFT.
func disaggFingerprint(r *sim.ClusterReport) string {
	pools := ""
	for _, p := range r.Pools {
		pools += fmt.Sprintf("|%s:%d/%d", p.Role, p.Slots, p.Requests)
	}
	rg := r.Regret
	return fmt.Sprintf("%s handoffs=%d handoff_b=%d link_s=%s pools=%s s1=%d/%d s2=%d/%d requeues=%d fallbacks=%d ttft95=%s",
		clusterFingerprint(r), r.HandoffCount, r.HandoffBytes, g17(r.HandoffLinkSeconds),
		pools, rg.Stage1Decisions, rg.Stage1RegretTokens, rg.Stage2Decisions, rg.Stage2RegretTokens,
		rg.Requeues, rg.RateFallbacks, g17(disaggP95TTFT(r)))
}

// disaggP95TTFT averages p95 TTFT over the traffic classes — the
// latency axis disaggregation optimises.
func disaggP95TTFT(r *sim.ClusterReport) float64 {
	sum := 0.0
	for _, cs := range r.Classes {
		sum += cs.TTFT.P95Sec
	}
	return sum / float64(len(r.Classes))
}

// TestGoldenDisagg pins the disaggregated run bit-for-bit — standalone
// and under parallel Sweep execution — and asserts the payoff against a
// unified fleet of the same four slots: better p95 TTFT at near-equal
// cost proxy.
func TestGoldenDisagg(t *testing.T) {
	const want = "iters=2696 admitted=96 rejected=0 end_ps=405514933474 evict=0 reload=0 tput=24778.372312752916 good=24778.372312752916 p99=0.110956697815 handoffs=96 handoff_b=1679818752 link_s=0.013133183999999999 pools=|prefill:2/96|decode:2/96 s1=96/0 s2=96/0 requeues=0 fallbacks=0 ttft95=0.0030484378515"

	rep, err := disaggScenario(t, "disagg").Run()
	if err != nil {
		t.Fatal(err)
	}
	got := disaggFingerprint(rep)
	if os.Getenv("GOLDEN_PRINT") != "" {
		t.Logf("golden: disagg: %q,", got)
	} else if got != want {
		t.Errorf("behaviour drifted from pinned golden\n got %s\nwant %s", got, want)
	}

	// Structural invariants of the two-stage pipeline: every admitted
	// request is placed once on each pool, and every decode placement
	// (initial or requeued) prices exactly one handoff.
	rg := rep.Regret
	if rg.Stage1Decisions != rep.Admitted || rg.Stage2Decisions != rep.Admitted {
		t.Errorf("stage decisions %d/%d, want %d each (one per admitted request)",
			rg.Stage1Decisions, rg.Stage2Decisions, rep.Admitted)
	}
	if rep.HandoffCount != rg.Stage2Decisions {
		t.Errorf("handoffs %d != stage-2 placements %d", rep.HandoffCount, rg.Stage2Decisions)
	}
	if len(rep.Pools) != 2 || rep.Pools[0].Role != "prefill" || rep.Pools[1].Role != "decode" {
		t.Fatalf("pools %+v, want prefill+decode", rep.Pools)
	}

	// The unified comparator: same trace, same four slots, colocated.
	uni := sim.ClusterScenario{
		Name:     "unified",
		Config:   disaggConfig(),
		Replicas: 4,
		Router:   sim.RouterLeastLoaded,
		Classes:  disaggClasses(),
		Trace:    disaggTrace(t),
	}
	uniRep, err := uni.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d, u := disaggP95TTFT(rep), disaggP95TTFT(uniRep); d >= u {
		t.Errorf("disaggregated p95 TTFT %.4fs does not beat unified %.4fs", d, u)
	}
	if ratio := rep.CostProxy / uniRep.CostProxy; ratio < 0.7 || ratio > 1.4 {
		t.Errorf("cost proxy ratio %.3f (disagg %.2f vs unified %.2f) is not near-equal",
			ratio, rep.CostProxy, uniRep.CostProxy)
	}

	// The same scenario inside a parallel Sweep (alongside a copy, so
	// workers genuinely interleave) must reproduce the fingerprint
	// bit-for-bit.
	sw := &sim.Sweep{
		ClusterScenarios: []sim.ClusterScenario{disaggScenario(t, "disagg-a"), disaggScenario(t, "disagg-b")},
		Workers:          2,
	}
	swRep, err := sw.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := swRep.Err(); err != nil {
		t.Fatal(err)
	}
	for i, res := range swRep.Results {
		if swGot := disaggFingerprint(res.Cluster); swGot != got {
			t.Errorf("sweep result %d diverged from the standalone run\n got %s\nwant %s", i, swGot, got)
		}
	}
}

// TestDisaggFailover kills one replica of each pool mid-run: the
// prefill casualty's backlog requeues as flagged stage-1 decisions, the
// decode casualty's in-flight generations requeue with their KV
// handoffs re-priced to the surviving decode replica — and the decision
// records account for every one of them.
func TestDisaggFailover(t *testing.T) {
	events, err := sim.ParseFleetEvents("fail@0.08:0,fail@0.16:2")
	if err != nil {
		t.Fatal(err)
	}
	sc := disaggScenario(t, "disagg-failover")
	sc.FleetEvents = events
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requeued == 0 {
		t.Fatal("failing one replica per pool mid-run requeued nothing; move the event times into the busy window")
	}
	rg := rep.Regret
	if rg.Requeues != rep.Requeued {
		t.Errorf("regret summary counts %d requeued routes, report says %d", rg.Requeues, rep.Requeued)
	}
	// Every decode placement prices a handoff — including re-priced
	// requeues off the failed decode replica, which push the handoff
	// count past one-per-admitted.
	if rep.HandoffCount != rg.Stage2Decisions {
		t.Errorf("handoffs %d != stage-2 placements %d", rep.HandoffCount, rg.Stage2Decisions)
	}
	if rep.HandoffCount <= rep.Admitted-rep.Rejected {
		t.Errorf("handoffs %d not above completed count %d: decode requeues were not re-priced",
			rep.HandoffCount, rep.Admitted-rep.Rejected)
	}
	// The decisions TSV marks each requeued route.
	var dec bytes.Buffer
	if err := sc.Telemetry.WriteDecisionsTSV(&dec); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(dec.String(), "requeue"); n != rep.Requeued {
		t.Errorf("decisions TSV marks %d requeued routes, report says %d", n, rep.Requeued)
	}
	// Nothing may be lost: every arrival either completed or was
	// rejected with a recorded reason.
	completed, rejected := 0, 0
	for _, cs := range rep.Classes {
		completed += cs.Completed
		rejected += cs.Rejected
	}
	if completed+rejected != rep.Requests {
		t.Errorf("%d completed + %d rejected != %d arrivals", completed, rejected, rep.Requests)
	}
}

// TestDisaggDecodePoolLost kills the only decode replica: requests
// already handed off die as failure rejects, requests still in prefill
// (and every later arrival) are rejected no-replica — the cluster
// drains cleanly instead of hanging on an impossible handoff.
func TestDisaggDecodePoolLost(t *testing.T) {
	fleet, err := sim.ParseFleet("1xgpt2#prefill,1xgpt2#decode")
	if err != nil {
		t.Fatal(err)
	}
	events, err := sim.ParseFleetEvents("fail@0.1:1")
	if err != nil {
		t.Fatal(err)
	}
	sc := sim.ClusterScenario{
		Name:        "disagg-decode-lost",
		Config:      disaggConfig(),
		Classes:     disaggClasses(),
		Trace:       disaggTrace(t),
		FleetEvents: events,
	}.WithReplicaSpecs(fleet...)
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	noReplica, rejected, completed := 0, 0, 0
	for _, cs := range rep.Classes {
		noReplica += cs.RejectedNoReplica
		rejected += cs.Rejected
		completed += cs.Completed
	}
	if noReplica == 0 {
		t.Error("losing the whole decode pool produced no no-replica rejects")
	}
	if completed+rejected != rep.Requests {
		t.Errorf("%d completed + %d rejected != %d arrivals", completed, rejected, rep.Requests)
	}
	if completed == 0 {
		t.Error("requests handed off before the failure should have completed")
	}
}

// TestDisaggAutoscale drives per-pool scaling: an slo-target policy
// with unattainable targets must grow both pools independently within
// their own clamps, and the fleet timeline must attribute the growth to
// the right pool.
func TestDisaggAutoscale(t *testing.T) {
	fleet, err := sim.ParseFleet("1xgpt2#prefill,1xgpt2#decode")
	if err != nil {
		t.Fatal(err)
	}
	classes := []sim.TrafficClass{
		{Name: "doc", Dist: "fixed-512-128", RatePerSec: 240,
			TTFT: 2 * time.Millisecond, TPOT: 500 * time.Microsecond},
	}
	trace, err := sim.MultiClassTrace(classes, 96, sim.Ramp{}, 20240614)
	if err != nil {
		t.Fatal(err)
	}
	sc := sim.ClusterScenario{
		Name:               "disagg-autoscale",
		Config:             disaggConfig(),
		Classes:            classes,
		Trace:              trace,
		Autoscaler:         sim.ScaleSLO,
		ScaleTick:          50 * time.Millisecond,
		ScaleSLOTarget:     0.95,
		ScaleSLOHigh:       1,
		PrefillMaxReplicas: 3,
		DecodeMaxReplicas:  2,
		ProvisionDelay:     20 * time.Millisecond,
	}.WithReplicaSpecs(fleet...)
	rep, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scaler != "slo-target" {
		t.Fatalf("scaler %q, want slo-target", rep.Scaler)
	}
	maxPrefill, maxDecode := 0, 0
	for _, p := range rep.FleetTimeline {
		maxPrefill = max(maxPrefill, p.ActivePrefill)
		maxDecode = max(maxDecode, p.ActiveDecode)
	}
	if maxPrefill <= 1 {
		t.Errorf("prefill pool never grew past %d active replicas", maxPrefill)
	}
	if maxDecode != 2 {
		t.Errorf("decode pool peaked at %d active replicas, want its clamp 2", maxDecode)
	}
	if maxPrefill > 3 {
		t.Errorf("prefill pool exceeded its clamp: %d active replicas", maxPrefill)
	}
	if rep.Pools[0].Slots <= 1 || rep.Pools[1].Slots <= 1 {
		t.Errorf("pool slots %d/%d, want both pools to have scaled up",
			rep.Pools[0].Slots, rep.Pools[1].Slots)
	}
}

// TestDisaggValidate pins the scenario-level guard rails.
func TestDisaggValidate(t *testing.T) {
	base := func() sim.ClusterScenario {
		return disaggScenario(t, "guard")
	}
	cases := map[string]func() sim.ClusterScenario{
		"mixed roles": func() sim.ClusterScenario {
			sc := base()
			sc.Fleet[0].Role = sim.RoleUnified
			return sc
		},
		"empty decode pool": func() sim.ClusterScenario {
			sc := base()
			sc.Fleet[1].Role = sim.RolePrefill
			return sc
		},
		"skip-initiation": func() sim.ClusterScenario {
			sc := base()
			sc.Config.SkipInitiation = true
			return sc
		},
		"scale event": func() sim.ClusterScenario {
			sc := base()
			sc.FleetEvents = []sim.FleetEvent{{At: time.Second, Kind: sim.FleetScale, Replicas: 6}}
			return sc
		},
		"pool bounds on unified fleet": func() sim.ClusterScenario {
			sc := base()
			sc.Fleet = nil
			sc.Replicas = 2
			sc.PrefillMinReplicas = 2
			return sc
		},
		"pool max below min": func() sim.ClusterScenario {
			sc := base()
			sc.DecodeMinReplicas = 4
			sc.DecodeMaxReplicas = 2
			return sc
		},
	}
	for name, mk := range cases {
		if err := mk().Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid disaggregated scenario", name)
		}
	}
	if err := base().Validate(); err != nil {
		t.Errorf("valid disaggregated scenario rejected: %v", err)
	}
}
