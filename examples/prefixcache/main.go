// Prefixcache: a walkthrough of shared-prefix KV caching, chunked
// prefill, and prefix-aware routing. Agent-style traffic — four classes
// that each prepend a long fixed system prompt to every request — hits
// a 2-replica cluster whose KV budget cannot hold all four prefix
// chains at once, and we compare three routers on the same trace:
//
//   - round-robin ignores both load and cache state;
//   - least-loaded balances queued tokens but scatters every class
//     across both replicas, so the prefix chains keep evicting each
//     other and prompts re-prefill from scratch;
//   - prefix-affinity sends each request to the replica holding the
//     most of its class's cached prefix, which settles into a stable
//     partition of chains over replicas.
//
// Each replica runs the chunked-prefill scheduler on top of the tiered
// (GPU + host) prefix cache, so a cache hit skips straight past the
// shared prefix and only computes the private remainder. The report
// shows the payoff chain end to end: higher hit rate -> fewer
// re-prefilled tokens -> lower p95 TTFT and higher goodput. Runs are
// deterministic; re-running reproduces the numbers bit for bit.
package main

import (
	"fmt"
	"log"
	"time"

	llmservingsim "repro"
)

func main() {
	// Four agent classes with distinct 768-token system prompts over a
	// short private prompt, plus prefix-free chat filler. PrefixTokens
	// rides on top of the sampled input length, so every "triage"
	// request shares its first 768 tokens with every other.
	classes := []llmservingsim.TrafficClass{
		{Name: "chat", Dist: "fixed-96-48", RatePerSec: 240,
			TTFT: 20 * time.Millisecond, TPOT: 5 * time.Millisecond},
	}
	for _, name := range []string{"triage", "search", "coder", "writer"} {
		classes = append(classes, llmservingsim.TrafficClass{
			Name: name, Dist: "fixed-64-64", RatePerSec: 240,
			TTFT: 20 * time.Millisecond, TPOT: 5 * time.Millisecond,
			PrefixTokens: 768,
		})
	}
	trace, err := llmservingsim.MultiClassTrace(classes, 240, llmservingsim.Ramp{From: 0.8, To: 1.6}, 7)
	if err != nil {
		log.Fatal(err)
	}

	// A memory-starved gpt2 replica (same shape as the golden suite):
	// ~90 MB of KV budget holds roughly two of the four prefix chains,
	// so router placement decides whether chains thrash. The host tier
	// is kept small enough that spilled chains mostly drop, making a
	// miss cost a full 768-token re-prefill.
	cfg := llmservingsim.DefaultConfig()
	cfg.Model = "gpt2"
	cfg.NPUs = 2
	cfg.Parallelism = llmservingsim.ParallelismTensor
	cfg.NPU.MemoryBytes = 161 << 20
	cfg.PerfModel = llmservingsim.PerfModelRoofline
	cfg.Scheduling = llmservingsim.SchedChunked
	cfg.PrefixCache = llmservingsim.PrefixCacheTiered
	cfg.KVHostMemGB = 0.02

	base := llmservingsim.ClusterScenario{
		Config:   cfg,
		Replicas: 2,
		Classes:  classes,
		Trace:    trace,
	}
	var scenarios []llmservingsim.ClusterScenario
	for _, router := range []llmservingsim.RouterPolicy{
		llmservingsim.RouterRoundRobin,
		llmservingsim.RouterLeastLoaded,
		llmservingsim.RouterPrefixAffinity,
	} {
		sc := base
		sc.Name = router.String()
		sc.Router = router
		scenarios = append(scenarios, sc)
	}

	sw := (&llmservingsim.Sweep{}).AddCluster(scenarios...)
	rep, err := sw.Run()
	if err != nil {
		log.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("shared-prefix routing: %d requests, 4x768-token prefix chains over %d replicas\n\n",
		len(trace), base.Replicas)
	for _, res := range rep.Results {
		c := res.Cluster
		// Aggregate p95 TTFT over the four prefix-carrying classes.
		ttft, n := 0.0, 0
		for _, cs := range c.Classes {
			if cs.Class == "chat" {
				continue
			}
			ttft += cs.TTFT.P95Sec
			n++
		}
		fmt.Printf("=== %-16s hit rate %5.1f %%  saved %6d toks  agent p95 ttft %7.1f ms  goodput %7.1f tok/s\n",
			res.Name, 100*c.PrefixHitRate, c.PrefixTokensSaved, 1e3*ttft/float64(n), c.GoodputTPS)
		for _, p := range c.PerReplica {
			fmt.Printf("    replica %d: hit rate %5.1f %%  spilled %6.1f MB  reloaded %6.1f MB  link time %6.3f ms\n",
				p.Index, 100*p.PrefixHitRate,
				float64(p.PrefixSpillBytes)/(1<<20), float64(p.PrefixReloadBytes)/(1<<20),
				1e3*p.PrefixLinkSeconds)
		}
		fmt.Println()
	}

	if best := rep.BestCluster(func(r *llmservingsim.ClusterReport) float64 { return r.GoodputTPS }); best != nil {
		fmt.Printf("best goodput: %s (%.1f tok/s)\n", best.Name, best.Cluster.GoodputTPS)
	}
}
