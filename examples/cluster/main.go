// Cluster: a capacity-planning walkthrough over the multi-replica
// serving layer. A mixed workload — latency-sensitive "chat" traffic
// with tight TTFT/TPOT SLOs plus bulk "api" traffic — arrives at a
// 4-replica cluster, and we ask the questions a single-instance
// simulation cannot answer:
//
//  1. Which routing policy holds the P99 time-to-first-token down,
//     round-robin or least-loaded (join-shortest-queue)?
//  2. How much goodput (SLO-attained tokens/second) does each policy
//     deliver per class?
//  3. What does admission control (a per-replica queue cap) trade:
//     rejected requests against tail latency for the admitted ones?
//
// Every arrival flows through the cluster pipeline
//
//	arrival -> admission -> routing -> replica -> per-request record
//
// and the per-request records roll up into the per-class SLO tables
// printed below. The three cluster scenarios are fanned out over the
// Sweep worker pool; runs are deterministic, so re-running this example
// reproduces the numbers bit for bit.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	llmservingsim "repro"
)

func main() {
	// Two traffic classes with per-class SLO targets. The rates push
	// four 2-NPU gpt3-7b replicas past saturation — ~36 req/s combined,
	// ramping to 2x by the end of the trace — so queueing, SLO misses,
	// and admission trade-offs actually show up.
	classes := []llmservingsim.TrafficClass{
		{Name: "chat", Dist: "alpaca", RatePerSec: 12,
			TTFT: 250 * time.Millisecond, TPOT: 50 * time.Millisecond},
		{Name: "api", Dist: "fixed-128-64", RatePerSec: 24,
			TTFT: 2 * time.Second, TPOT: 100 * time.Millisecond},
	}
	trace, err := llmservingsim.MultiClassTrace(classes, 240, llmservingsim.Ramp{From: 1, To: 2}, 42)
	if err != nil {
		log.Fatal(err)
	}

	cfg := llmservingsim.DefaultConfig()
	cfg.Model = "gpt3-7b"
	cfg.NPUs = 2
	cfg.Parallelism = llmservingsim.ParallelismTensor

	base := llmservingsim.ClusterScenario{
		Config:   cfg,
		Replicas: 4,
		Classes:  classes,
		Trace:    trace,
	}

	rr := base
	rr.Name = "round-robin"
	rr.Router = llmservingsim.RouterRoundRobin

	least := base
	least.Name = "least-loaded"
	least.Router = llmservingsim.RouterLeastLoaded

	capped := base
	capped.Name = "least-loaded+queue-cap"
	capped.Router = llmservingsim.RouterLeastLoaded
	capped.Admission = llmservingsim.AdmitQueueCap
	capped.AdmissionLimit = 8 // at most 8 requests queued per replica

	sw := (&llmservingsim.Sweep{}).AddCluster(rr, least, capped)
	rep, err := sw.Run()
	if err != nil {
		log.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("capacity planning: %d requests over %d replicas (%s)\n\n",
		len(trace), base.Replicas, rep.Results[0].Cluster.Topology)
	for _, res := range rep.Results {
		c := res.Cluster
		fmt.Printf("=== %-24s rejected %3d  cluster goodput %7.1f tok/s  p99 latency %.3fs\n",
			res.Name, c.Rejected, c.GoodputTPS, c.Latency.P99Sec)
		for _, cs := range c.Classes {
			fmt.Printf("    %-6s p99 ttft %7.3fs  mean tpot %7.4fs  attained %3d/%-3d  goodput %7.1f tok/s\n",
				cs.Class, cs.TTFT.P99Sec, cs.TPOT.MeanSec, cs.SLOAttained, cs.Requests, cs.GoodputTPS)
		}
		fmt.Println()
	}

	if best := rep.BestCluster(func(r *llmservingsim.ClusterReport) float64 { return r.GoodputTPS }); best != nil {
		fmt.Printf("best goodput: %s (%.1f tok/s)\n\n", best.Name, best.Cluster.GoodputTPS)
	}

	// The full comparison table, one row per scenario.
	if err := rep.WriteTSV(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
