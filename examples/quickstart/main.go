// Quickstart: simulate a small ShareGPT-like workload on a 4-NPU
// tensor-parallel system and print the serving summary, using the
// functional-options constructor.
package main

import (
	"fmt"
	"log"

	llmservingsim "repro"
)

func main() {
	trace, err := llmservingsim.ShareGPTTrace(64, 4.0, 1)
	if err != nil {
		log.Fatal(err)
	}

	sim, err := llmservingsim.New(trace,
		llmservingsim.WithModel("gpt3-7b"),
		llmservingsim.WithNPUs(4),
		llmservingsim.WithParallelism(llmservingsim.ParallelismTensor),
	)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Simulated %d requests on %s (%s)\n", rep.Latency.Count, rep.Model, rep.Topology)
	fmt.Printf("  iterations:        %d\n", rep.Iterations)
	fmt.Printf("  simulated seconds: %.2f\n", rep.SimEndSec)
	fmt.Printf("  prompt throughput: %.1f tok/s\n", rep.PromptTPS)
	fmt.Printf("  gen throughput:    %.1f tok/s\n", rep.GenTPS)
	fmt.Printf("  mean latency:      %.3f s (TTFT %.3f s)\n", rep.Latency.MeanSec, rep.Latency.TTFTSec)
	fmt.Printf("  wall-clock:        %v (engine cache hit rate %.0f%%)\n",
		rep.SimTime.Total, 100*rep.EngineCacheHitRate)
}
