// Parallelism: sweep tensor/pipeline/hybrid parallelism strategies for
// GPT3-30B on 16 NPUs (the Fig. 3 hybrid topology is TP4 x PP4) and
// report how the strategy changes serving throughput and latency —
// all-reduce-heavy tensor parallelism vs fill-latency-bound pipeline
// parallelism. The five strategies run concurrently as one Sweep.
package main

import (
	"fmt"
	"log"

	llmservingsim "repro"
)

func main() {
	trace, err := llmservingsim.ShareGPTTrace(32, 2.0, 3)
	if err != nil {
		log.Fatal(err)
	}

	base := llmservingsim.DefaultConfig()
	base.Model = "gpt3-30b"
	base.NPUs = 16

	strategy := func(p llmservingsim.Parallelism, groups int) func(*llmservingsim.Config) {
		return func(c *llmservingsim.Config) { c.Parallelism = p; c.NPUGroups = groups }
	}
	scenarios := llmservingsim.Variants(base, trace,
		llmservingsim.Variant{Name: "TP16 PP1 (tensor)", Apply: strategy(llmservingsim.ParallelismTensor, 0)},
		llmservingsim.Variant{Name: "TP8  PP2 (hybrid)", Apply: strategy(llmservingsim.ParallelismHybrid, 2)},
		llmservingsim.Variant{Name: "TP4  PP4 (hybrid, Fig 3)", Apply: strategy(llmservingsim.ParallelismHybrid, 4)},
		llmservingsim.Variant{Name: "TP2  PP8 (hybrid)", Apply: strategy(llmservingsim.ParallelismHybrid, 8)},
		llmservingsim.Variant{Name: "TP1  PP16 (pipeline)", Apply: strategy(llmservingsim.ParallelismPipeline, 0)},
	)

	report, err := llmservingsim.NewSweep(scenarios...).Run()
	if err != nil {
		log.Fatal(err)
	}
	if err := report.Err(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("strategy                      iters   sim_end   gen tok/s   mean lat   ttft")
	for _, res := range report.Results {
		rep := res.Report
		fmt.Printf("%-28s %6d  %7.2fs  %9.1f  %8.3fs  %6.3fs\n",
			res.Name, rep.Iterations, rep.SimEndSec, rep.GenTPS, rep.Latency.MeanSec, rep.Latency.TTFTSec)
	}
}
