// Parallelism: sweep tensor/pipeline/hybrid parallelism strategies for
// GPT3-30B on 16 NPUs (the Fig. 3 hybrid topology is TP4 x PP4) and
// report how the strategy changes serving throughput and latency —
// all-reduce-heavy tensor parallelism vs fill-latency-bound pipeline
// parallelism.
package main

import (
	"fmt"
	"log"

	llmservingsim "repro"
)

func main() {
	trace, err := llmservingsim.ShareGPTTrace(32, 2.0, 3)
	if err != nil {
		log.Fatal(err)
	}

	type cfg struct {
		name        string
		parallelism string
		groups      int
	}
	sweeps := []cfg{
		{"TP16 PP1 (tensor)", "tensor", 0},
		{"TP8  PP2 (hybrid)", "hybrid", 2},
		{"TP4  PP4 (hybrid, Fig 3)", "hybrid", 4},
		{"TP2  PP8 (hybrid)", "hybrid", 8},
		{"TP1  PP16 (pipeline)", "pipeline", 0},
	}

	fmt.Println("strategy                      iters   sim_end   gen tok/s   mean lat   ttft")
	for _, s := range sweeps {
		c := llmservingsim.DefaultConfig()
		c.Model = "gpt3-30b"
		c.NPUs = 16
		c.Parallelism = s.parallelism
		c.NPUGroups = s.groups
		sim, err := llmservingsim.New(c, trace)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %6d  %7.2fs  %9.1f  %8.3fs  %6.3fs\n",
			s.name, rep.Iterations, rep.SimEndSec, rep.GenTPS, rep.Latency.MeanSec, rep.Latency.TTFTSec)
	}
}
