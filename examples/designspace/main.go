// Designspace: use the simulator the way an architecture group would —
// sweep NPU design points (systolic array geometry, scratchpad size,
// memory bandwidth) under a fixed serving workload and report which
// configuration serves it best. This is the hardware-exploration use case
// the paper motivates LLMServingSim with: evaluating accelerator designs
// at the serving-system level instead of per-kernel.
//
// The design points are expressed as Variants over a base Config and
// fanned out concurrently by the Sweep worker pool, one simulation per
// core.
package main

import (
	"fmt"
	"log"
	"os"

	llmservingsim "repro"
	"repro/internal/config"
)

func main() {
	trace, err := llmservingsim.ShareGPTTrace(32, 6.0, 21)
	if err != nil {
		log.Fatal(err)
	}

	base := llmservingsim.DefaultConfig()
	base.Model = "gpt3-7b"
	base.NPUs = 2
	base.Parallelism = llmservingsim.ParallelismTensor

	npu := func(mut func(*config.NPUConfig)) func(*llmservingsim.Config) {
		return func(c *llmservingsim.Config) { mut(&c.NPU) }
	}
	scenarios := llmservingsim.Variants(base, trace,
		llmservingsim.Variant{Name: "baseline 128x128, 936 GB/s"},
		llmservingsim.Variant{Name: "wider array 256x256", Apply: npu(func(n *config.NPUConfig) {
			n.SystolicRows, n.SystolicCols = 256, 256
		})},
		llmservingsim.Variant{Name: "narrow array 64x64", Apply: npu(func(n *config.NPUConfig) {
			n.SystolicRows, n.SystolicCols = 64, 64
		})},
		llmservingsim.Variant{Name: "double bandwidth 1.9 TB/s", Apply: npu(func(n *config.NPUConfig) {
			n.MemoryBWBytes = 2 * 936e9
		})},
		llmservingsim.Variant{Name: "half bandwidth 468 GB/s", Apply: npu(func(n *config.NPUConfig) {
			n.MemoryBWBytes = 936e9 / 2
		})},
		llmservingsim.Variant{Name: "big scratchpad 64 MiB", Apply: npu(func(n *config.NPUConfig) {
			n.SRAMBytes = 64 << 20
		})},
		llmservingsim.Variant{Name: "2 GHz clock", Apply: npu(func(n *config.NPUConfig) {
			n.FrequencyHz = 2e9
		})},
	)

	report, err := llmservingsim.NewSweep(scenarios...).Run()
	if err != nil {
		log.Fatal(err)
	}
	if err := report.Err(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("design point                    gen tok/s   mean lat     p95 lat")
	for _, res := range report.Results {
		rep := res.Report
		fmt.Printf("%-30s %10.1f %10.3fs %10.3fs\n",
			res.Name, rep.GenTPS, rep.Latency.MeanSec, rep.Latency.P95Sec)
	}
	best := report.Best(func(r *llmservingsim.Report) float64 { return r.GenTPS })
	fmt.Printf("\nbest design: %s (%.1f gen tok/s), swept %d points in %v\n",
		best.Name, best.Report.GenTPS, len(report.Results), report.Wall.Round(1e6))

	fmt.Println("\nDecode serving is bandwidth-bound: bandwidth changes move throughput,")
	fmt.Println("while array geometry mostly moves the compute-bound initiation phase.")

	f, err := os.Create("designspace-sweep.tsv")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := report.WriteTSV(f); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote designspace-sweep.tsv")
}
