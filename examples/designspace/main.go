// Designspace: use the simulator the way an architecture group would —
// sweep NPU design points (systolic array geometry, scratchpad size,
// memory bandwidth) under a fixed serving workload and report which
// configuration serves it best. This is the hardware-exploration use case
// the paper motivates LLMServingSim with: evaluating accelerator designs
// at the serving-system level instead of per-kernel.
package main

import (
	"fmt"
	"log"

	llmservingsim "repro"
	"repro/internal/config"
)

func main() {
	trace, err := llmservingsim.ShareGPTTrace(32, 6.0, 21)
	if err != nil {
		log.Fatal(err)
	}

	type design struct {
		name string
		mut  func(*config.NPUConfig)
	}
	designs := []design{
		{"baseline 128x128, 936 GB/s", func(n *config.NPUConfig) {}},
		{"wider array 256x256", func(n *config.NPUConfig) {
			n.SystolicRows, n.SystolicCols = 256, 256
		}},
		{"narrow array 64x64", func(n *config.NPUConfig) {
			n.SystolicRows, n.SystolicCols = 64, 64
		}},
		{"double bandwidth 1.9 TB/s", func(n *config.NPUConfig) {
			n.MemoryBWBytes = 2 * 936e9
		}},
		{"half bandwidth 468 GB/s", func(n *config.NPUConfig) {
			n.MemoryBWBytes = 936e9 / 2
		}},
		{"big scratchpad 64 MiB", func(n *config.NPUConfig) {
			n.SRAMBytes = 64 << 20
		}},
		{"2 GHz clock", func(n *config.NPUConfig) {
			n.FrequencyHz = 2e9
		}},
	}

	fmt.Println("design point                    gen tok/s   mean lat     p95 lat")
	for _, d := range designs {
		cfg := llmservingsim.DefaultConfig()
		cfg.Model = "gpt3-7b"
		cfg.NPUs = 2
		cfg.Parallelism = "tensor"
		d.mut(&cfg.NPU)

		sim, err := llmservingsim.New(cfg, trace)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-30s %10.1f %10.3fs %10.3fs\n",
			d.name, rep.GenTPS, rep.Latency.MeanSec, rep.Latency.P95Sec)
	}
	fmt.Println("\nDecode serving is bandwidth-bound: bandwidth changes move throughput,")
	fmt.Println("while array geometry mostly moves the compute-bound initiation phase.")
}
