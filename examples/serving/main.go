// Serving: the Fig. 6-style validation scenario. A Poisson ShareGPT
// workload is served twice — once by the GPU reference system (the
// vLLM-like "real system" stand-in) and once by LLMServingSim's NPU model —
// and the throughput-over-time series are printed side by side with the
// trend error, the paper's simulator-validation methodology.
package main

import (
	"fmt"
	"log"
	"time"

	llmservingsim "repro"
)

func main() {
	trace, err := llmservingsim.ShareGPTTrace(96, 6.0, 42)
	if err != nil {
		log.Fatal(err)
	}

	run := func(useGPU bool) *llmservingsim.Report {
		sim, err := llmservingsim.New(trace,
			llmservingsim.WithModel("gpt3-7b"),
			llmservingsim.WithNPUs(1),
			llmservingsim.WithParallelism(llmservingsim.ParallelismTensor),
			llmservingsim.WithGPUEngine(useGPU),
			llmservingsim.WithThroughputWindow(5*time.Second),
		)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}

	ref := run(true)  // GPU/vLLM reference
	sim := run(false) // LLMServingSim NPU model

	fmt.Println("time_s   ref_prompt  sim_prompt   ref_gen   sim_gen   (tok/s)")
	n := min(len(ref.Throughput), len(sim.Throughput))
	for i := 0; i < n; i++ {
		r, s := ref.Throughput[i], sim.Throughput[i]
		fmt.Printf("%6.0f   %10.1f  %10.1f  %8.1f  %8.1f\n",
			r.TimeSec, r.PromptTPS, s.PromptTPS, r.GenTPS, s.GenTPS)
	}
	fmt.Printf("\nmean gen throughput: reference %.1f tok/s, simulator %.1f tok/s (diff %.1f%%)\n",
		ref.GenTPS, sim.GenTPS, 100*abs(ref.GenTPS-sim.GenTPS)/ref.GenTPS)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
