// Fleet: a heterogeneous capacity-planning walkthrough over the
// pluggable performance-model backends. The question: you serve a mixed
// chat/api workload on four RTX 3090-class replicas and can afford two
// more cards — do you buy two more 3090s, or two A100s? And does the
// smarter router matter more than the extra silicon?
//
// Every replica group in a fleet can name its own hardware and its own
// performance model (see ParseFleet's COUNTxMODEL[@HARDWARE][:PERFMODEL]
// grammar). This example prices everything with the analytical roofline
// backend, which makes the whole four-scenario sweep run in well under a
// second — the regime the backend exists for: wide what-if scans whose
// shortlist you then re-run under the bit-exact astra pipeline.
//
// The router sees true per-replica speed: a least-loaded policy queues
// by tokens, and because A100 replicas drain tokens faster, they
// naturally absorb a larger share of the traffic — visible in the
// per-replica placement table at the end.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	llmservingsim "repro"
)

func main() {
	classes := []llmservingsim.TrafficClass{
		{Name: "chat", Dist: "alpaca", RatePerSec: 18,
			TTFT: 250 * time.Millisecond, TPOT: 50 * time.Millisecond},
		{Name: "api", Dist: "fixed-128-64", RatePerSec: 36,
			TTFT: 2 * time.Second, TPOT: 100 * time.Millisecond},
	}
	trace, err := llmservingsim.MultiClassTrace(classes, 360, llmservingsim.Ramp{From: 1, To: 2}, 42)
	if err != nil {
		log.Fatal(err)
	}

	cfg := llmservingsim.DefaultConfig()
	cfg.Model = "gpt3-7b"
	cfg.NPUs = 2
	cfg.Parallelism = llmservingsim.ParallelismTensor
	cfg.PerfModel = llmservingsim.PerfModelRoofline
	cfg.Hardware = "rtx3090"

	base := llmservingsim.ClusterScenario{
		Config:  cfg,
		Router:  llmservingsim.RouterLeastLoaded,
		Classes: classes,
		Trace:   trace,
	}

	fleet := func(name, spec string, router llmservingsim.RouterPolicy) llmservingsim.ClusterScenario {
		specs, err := llmservingsim.ParseFleet(spec)
		if err != nil {
			log.Fatal(err)
		}
		sc := base.WithReplicaSpecs(specs...)
		sc.Name = name
		sc.Router = router
		return sc
	}

	sw := (&llmservingsim.Sweep{}).AddCluster(
		fleet("4x3090 baseline", "4xgpt3-7b@rtx3090:roofline", llmservingsim.RouterLeastLoaded),
		fleet("6x3090", "6xgpt3-7b@rtx3090:roofline", llmservingsim.RouterLeastLoaded),
		fleet("4x3090+2xa100", "4xgpt3-7b@rtx3090:roofline,2xgpt3-7b@a100:roofline", llmservingsim.RouterLeastLoaded),
		fleet("4x3090+2xa100 rr", "4xgpt3-7b@rtx3090:roofline,2xgpt3-7b@a100:roofline", llmservingsim.RouterRoundRobin),
	)
	rep, err := sw.Run()
	if err != nil {
		log.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fleet planning: %d requests, roofline backend\n\n", len(trace))
	for _, res := range rep.Results {
		c := res.Cluster
		fmt.Printf("=== %-18s goodput %7.1f tok/s  p99 latency %7.3fs  sim %6.2fs  wall %s\n",
			res.Name, c.GoodputTPS, c.Latency.P99Sec, c.SimEndSec, res.Wall.Round(time.Millisecond))
		for _, cs := range c.Classes {
			fmt.Printf("    %-6s p99 ttft %7.3fs  attained %3d/%-3d  goodput %7.1f tok/s\n",
				cs.Class, cs.TTFT.P99Sec, cs.SLOAttained, cs.Requests, cs.GoodputTPS)
		}
		fmt.Println()
	}

	if best := rep.BestCluster(func(r *llmservingsim.ClusterReport) float64 { return r.GoodputTPS }); best != nil {
		fmt.Printf("best goodput: %s (%.1f tok/s)\n\n", best.Name, best.Cluster.GoodputTPS)
	}

	// Placement: faster replicas absorb more load under least-loaded
	// routing. The backend column shows which model priced each replica.
	mixed := rep.Result("4x3090+2xa100")
	if mixed != nil && mixed.Cluster != nil {
		fmt.Println("per-replica placement of the mixed fleet (least-loaded):")
		if err := mixed.Cluster.WriteReplicaTSV(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
