// Disagg: prefill/decode disaggregation on a prefill-heavy workload.
// Two fleets of the same four slots serve the same trace:
//
//   - unified: four colocated replicas, each running prefill and decode
//     interleaved under static batching — a new prompt waits for the
//     in-flight batch to finish decoding before it is admitted;
//   - disaggregated: two prefill-only replicas that compute prompts and
//     hand the KV cache over the interconnect to two decode-only
//     replicas (the handoff is priced as link time and delays the first
//     decode token).
//
// The comparison isolates what the split buys: prompts never queue
// behind decode batches, so TTFT collapses, while TPOT pays the small
// handoff latency. Capacity cost is identical — same slots, same
// hardware — so the report also shows the bill (replica-seconds and
// cost proxy) side by side. Runs are deterministic; re-running
// reproduces the numbers bit for bit.
package main

import (
	"fmt"
	"log"
	"time"

	llmservingsim "repro"
)

func main() {
	// Document-processing traffic: long prompts, short answers. TTFT is
	// the contended metric — each arrival must prefill 512 tokens before
	// its first token, and under static batching a colocated replica
	// only admits prompts between decode batches.
	classes := []llmservingsim.TrafficClass{
		{Name: "doc", Dist: "fixed-512-128", RatePerSec: 160,
			TTFT: 100 * time.Millisecond, TPOT: 20 * time.Millisecond},
		{Name: "snip", Dist: "fixed-384-48", RatePerSec: 80,
			TTFT: 60 * time.Millisecond, TPOT: 10 * time.Millisecond},
	}
	trace, err := llmservingsim.MultiClassTrace(classes, 192, llmservingsim.Ramp{From: 0.8, To: 1.6}, 7)
	if err != nil {
		log.Fatal(err)
	}

	cfg := llmservingsim.DefaultConfig()
	cfg.Model = "gpt2"
	cfg.NPUs = 2
	cfg.Parallelism = llmservingsim.ParallelismTensor
	cfg.PerfModel = llmservingsim.PerfModelRoofline
	cfg.Scheduling = llmservingsim.SchedStatic

	unified := llmservingsim.ClusterScenario{
		Name:     "unified",
		Config:   cfg,
		Replicas: 4,
		Router:   llmservingsim.RouterLeastLoaded,
		Classes:  classes,
		Trace:    trace,
	}
	disagg := llmservingsim.ClusterScenario{
		Name:         "disaggregated",
		Config:       cfg,
		DecodeRouter: llmservingsim.RouterLeastLoaded,
		Classes:      classes,
		Trace:        trace,
	}.WithDisaggregation(2, 2)

	sw := (&llmservingsim.Sweep{}).AddCluster(unified, disagg)
	rep, err := sw.Run()
	if err != nil {
		log.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("prefill/decode disaggregation: %d long-prompt requests over 4 equal slots\n\n", len(trace))
	for _, res := range rep.Results {
		c := res.Cluster
		ttft, tpot := 0.0, 0.0
		for _, cs := range c.Classes {
			ttft += cs.TTFT.P95Sec
			tpot += cs.TPOT.P95Sec
		}
		ttft /= float64(len(c.Classes))
		tpot /= float64(len(c.Classes))
		fmt.Printf("=== %-14s p95 ttft %7.2f ms  p95 tpot %6.3f ms  goodput %7.1f tok/s  cost proxy %.1f\n",
			res.Name, 1e3*ttft, 1e3*tpot, c.GoodputTPS, c.CostProxy)
		for _, p := range c.Pools {
			fmt.Printf("    %-7s pool: %d slots, %d placements, %.1f replica-seconds\n",
				p.Role, p.Slots, p.Requests, p.ReplicaSeconds)
		}
		if c.HandoffCount > 0 {
			fmt.Printf("    kv handoff: %d transfers, %.1f MB over the interconnect (%.3f ms link time)\n",
				c.HandoffCount, float64(c.HandoffBytes)/(1<<20), 1e3*c.HandoffLinkSeconds)
		}
		fmt.Println()
	}

	if best := rep.BestCluster(func(r *llmservingsim.ClusterReport) float64 { return -avgTTFT(r) }); best != nil {
		fmt.Printf("best p95 ttft: %s (%.2f ms)\n", best.Name, 1e3*avgTTFT(best.Cluster))
	}
}

func avgTTFT(r *llmservingsim.ClusterReport) float64 {
	sum := 0.0
	for _, cs := range r.Classes {
		sum += cs.TTFT.P95Sec
	}
	return sum / float64(len(r.Classes))
}
