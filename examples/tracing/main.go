// Tracing: a walkthrough of the telemetry subsystem — request spans,
// policy decision records, and counterfactual routing regret — used to
// diagnose WHY one router beats another instead of just observing that
// it does.
//
// The workload is the shared-prefix agent traffic from the prefixcache
// example: four classes that each prepend a 768-token system prompt,
// hitting a 2-replica cluster whose KV budget holds only about two of
// the four prefix chains. We run the same trace under least-loaded and
// prefix-affinity routing with a full-detail telemetry recorder
// attached to each, then read the routing-regret summary out of the
// cluster report.
//
// Every routing decision records the top-k candidate replicas with a
// counterfactual cost: queued tokens, plus prefill tokens not covered
// by device-resident prefix cache — with uncovered shared-prefix
// tokens counted twice, because a blind placement pays once to
// re-prefill them and once more in cache-footprint displacement (the
// duplicated chain evicts someone else's blocks, and that debt is
// repaid token for token in later reloads). Regret is the gap between
// the chosen replica's cost and the best candidate's, converted to
// seconds at the chosen replica's realized token rate.
//
// The punchline: least-loaded looks locally clean (queues stay
// balanced) but accumulates far more regret, because balancing queues
// scatters each prefix chain across both replicas where the chains
// evict each other. Prefix-affinity tolerates lopsided queues to keep
// chains resident, so its decisions sit near the counterfactual
// optimum — and the regret gap points the same direction as the
// goodput gap, turning "router B is faster" into "router A gave away
// X seconds across N identifiable decisions". The Chrome traces and
// decision logs written next to the binary let you zoom into any one
// of those decisions in chrome://tracing (or ui.perfetto.dev).
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"time"

	llmservingsim "repro"
)

func main() {
	classes := []llmservingsim.TrafficClass{
		{Name: "chat", Dist: "fixed-96-48", RatePerSec: 240,
			TTFT: 20 * time.Millisecond, TPOT: 5 * time.Millisecond},
	}
	for _, name := range []string{"triage", "search", "coder", "writer"} {
		classes = append(classes, llmservingsim.TrafficClass{
			Name: name, Dist: "fixed-64-64", RatePerSec: 240,
			TTFT: 20 * time.Millisecond, TPOT: 5 * time.Millisecond,
			PrefixTokens: 768,
		})
	}
	// Moderate load (the golden-suite regime): queues stay short enough
	// that cache placement, not raw queue depth, decides each request's
	// fate — the regime where counterfactual regret isolates the cost
	// of prefix-blind placement. Deep in saturation the queued-token
	// term dominates every candidate's cost instead and the regret gap
	// compresses.
	trace, err := llmservingsim.MultiClassTrace(classes, 96, llmservingsim.Ramp{From: 0.8, To: 1.6}, 20240614)
	if err != nil {
		log.Fatal(err)
	}

	// Memory-starved replicas (as in examples/prefixcache): ~90 MB of
	// KV budget holds roughly two of the four 768-token prefix chains,
	// so placement decides whether chains thrash.
	cfg := llmservingsim.DefaultConfig()
	cfg.Model = "gpt2"
	cfg.NPUs = 2
	cfg.Parallelism = llmservingsim.ParallelismTensor
	cfg.NPU.MemoryBytes = 161 << 20
	cfg.PerfModel = llmservingsim.PerfModelRoofline
	cfg.Scheduling = llmservingsim.SchedChunked
	cfg.PrefixCache = llmservingsim.PrefixCacheTiered
	cfg.KVHostMemGB = 0.02

	base := llmservingsim.ClusterScenario{
		Config:   cfg,
		Replicas: 2,
		Classes:  classes,
		Trace:    trace,
	}

	routers := []llmservingsim.RouterPolicy{
		llmservingsim.RouterLeastLoaded,
		llmservingsim.RouterPrefixAffinity,
	}
	var scenarios []llmservingsim.ClusterScenario
	tels := make(map[string]*llmservingsim.Telemetry, len(routers))
	for _, router := range routers {
		tel := llmservingsim.NewTelemetry(llmservingsim.TelemetryConfig{
			Detail: llmservingsim.TraceFull,
		})
		tels[router.String()] = tel
		sc := base.WithTelemetry(tel)
		sc.Name = router.String()
		sc.Router = router
		scenarios = append(scenarios, sc)
	}

	sw := (&llmservingsim.Sweep{}).AddCluster(scenarios...)
	rep, err := sw.Run()
	if err != nil {
		log.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("routing regret on shared-prefix traffic: %d requests, 4x768-token prefix chains, %d replicas\n\n",
		len(trace), base.Replicas)
	regrets := make(map[string]*llmservingsim.RegretSummary, len(routers))
	for _, res := range rep.Results {
		c := res.Cluster
		r := c.Regret
		if r == nil {
			log.Fatalf("%s: no regret summary in report", res.Name)
		}
		regrets[res.Name] = r
		fmt.Printf("=== %-16s goodput %7.1f tok/s  hit rate %5.1f %%\n",
			res.Name, c.GoodputTPS, 100*c.PrefixHitRate)
		fmt.Printf("    regret: %d/%d decisions regretful (%.1f %%), %d counterfactual tokens given away\n",
			r.Regretful, r.Decisions, 100*r.RegretfulFrac(), r.TotalRegretTokens)
		fmt.Printf("            total %.3f s, mean %.4f s, max %.4f s across regretful decisions\n",
			r.TotalRegretSec, r.MeanRegretSec, r.MaxRegretSec)
		fmt.Printf("    realized outcomes: zero-regret picks mean ttft %.1f ms / tpot %.2f ms,"+
			" regretful picks %.1f ms / %.2f ms\n\n",
			1e3*r.MeanTTFTZeroSec, 1e3*r.MeanTPOTZeroSec,
			1e3*r.MeanTTFTRegretSec, 1e3*r.MeanTPOTRegretSec)
	}

	// The diagnosis: the router with more counterfactual regret is the
	// one losing goodput, and the regretful decisions are exactly the
	// ones whose realized TTFT degrades.
	ll, pa := regrets["least-loaded"], regrets["prefix-affinity"]
	switch {
	case ll.TotalRegretTokens > pa.TotalRegretTokens:
		fmt.Printf("least-loaded gives away %.1fx more tokens to regret than prefix-affinity:\n"+
			"balancing queues scatters prefix chains across replicas, and every scatter\n"+
			"pays re-prefill plus the displacement it inflicts on the resident chain.\n",
			float64(ll.TotalRegretTokens)/float64(pa.TotalRegretTokens))
	default:
		fmt.Println("unexpected: prefix-affinity accumulated more regret than least-loaded")
	}

	// Dump the decision logs and Chrome traces for offline digging:
	// load the .json files in chrome://tracing or ui.perfetto.dev; the
	// .tsv files list one policy decision per row with its top-k
	// candidate costs.
	for _, router := range routers {
		name := router.String()
		tel := tels[name]
		for _, out := range []struct {
			suffix string
			write  func(io.Writer) error
		}{
			{".trace.json", tel.WriteChromeTrace},
			{".decisions.tsv", tel.WriteDecisionsTSV},
		} {
			path := name + out.suffix
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := out.write(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
}
