// Autoscale: a dynamic-fleet walkthrough. The question every capacity
// plan ends at: you provision for peak — six RTX 3090-class replicas —
// but traffic ramps from a quiet morning to a 3x lunchtime spike and
// one replica dies right at the peak. How much of that capacity bill
// does an autoscaler save, and does it still hold the latency SLO
// through the failure?
//
// Both scenarios serve the identical trace and suffer the identical
// replica failure (injected with a fleet event, fail@T:R). The static
// fleet pays six replicas for the whole run; the autoscaled fleet
// starts at two, follows queue depth up to at most eight with a
// cold-start delay on every scale-up, requeues the failed replica's
// in-flight work onto survivors, and shrinks back as the spike fades.
// The capacity bill is the report's replica-seconds (integrated over
// the fleet timeline) and its hardware-weighted cost proxy.
//
// Everything is priced by the analytical roofline backend, so the
// whole comparison runs in well under a second, and — like every
// simulation here — both runs are bit-deterministic: same seed, same
// events, same timeline.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	llmservingsim "repro"
)

func main() {
	// A single chat class with a tight time-to-first-token SLO: the
	// "is anyone noticing the spike" metric.
	classes := []llmservingsim.TrafficClass{
		{Name: "chat", Dist: "sharegpt", RatePerSec: 8,
			TTFT: 2 * time.Second, TPOT: 120 * time.Millisecond},
	}
	// A lunchtime spike in a long day: quiet 1x traffic, a ramp up to
	// 3x, back down, and quiet again — the diurnal shape static fleets
	// are provisioned-for-peak against. Each phase is its own
	// deterministic trace, concatenated by shifting arrivals. Replica 0
	// dies right at the top of the spike.
	var trace []llmservingsim.Request
	var shift time.Duration
	for i, phase := range []struct {
		n    int
		ramp llmservingsim.Ramp
	}{
		{2000, llmservingsim.Ramp{}},                                        // quiet morning, 1x
		{2700, llmservingsim.Ramp{From: 1, To: 3, Over: 150 * time.Second}}, // ramp to peak
		{2700, llmservingsim.Ramp{From: 3, To: 1, Over: 150 * time.Second}}, // back down
		{2000, llmservingsim.Ramp{}},                                        // quiet afternoon
	} {
		seg, err := llmservingsim.MultiClassTrace(classes, phase.n, phase.ramp, int64(7+i))
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range seg {
			r.Arrival += shift
			trace = append(trace, r)
		}
		shift = trace[len(trace)-1].Arrival
	}
	// t=420s is the top of the spike (quiet phase ~250s + up-ramp ~170s).
	events, err := llmservingsim.ParseFleetEvents("fail@420:0")
	if err != nil {
		log.Fatal(err)
	}

	cfg := llmservingsim.DefaultConfig()
	cfg.Model = "gpt3-7b"
	cfg.NPUs = 2
	cfg.Parallelism = llmservingsim.ParallelismTensor
	cfg.PerfModel = llmservingsim.PerfModelRoofline
	cfg.Hardware = "rtx3090"

	base := llmservingsim.ClusterScenario{
		Config:      cfg,
		Router:      llmservingsim.RouterLeastLoaded,
		Classes:     classes,
		Trace:       trace,
		FleetEvents: events,
	}

	static := base
	static.Name = "static 6x3090"
	static.Replicas = 6

	scaled := base.WithAutoscaler(llmservingsim.ScaleQueueDepth, 3*time.Second, 2, 8)
	scaled.Name = "autoscaled 2-8"
	scaled.Replicas = 2
	scaled.ScaleQueueTarget = 85
	scaled.ProvisionDelay = 5 * time.Second

	sw := (&llmservingsim.Sweep{}).AddCluster(static, scaled)
	rep, err := sw.Run()
	if err != nil {
		log.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		log.Fatal(err)
	}

	slo := classes[0].TTFT.Seconds()
	fmt.Printf("dynamic fleets: %d requests ramping 1x->3x->1x, replica 0 fails at t=420s (peak) (SLO: p95 TTFT <= %.1fs)\n\n",
		len(trace), slo)
	for _, res := range rep.Results {
		c := res.Cluster
		chat := c.Class("chat")
		verdict := "HELD"
		if chat.TTFT.P95Sec > slo {
			verdict = "MISSED"
		}
		fmt.Printf("=== %-14s p95 ttft %6.3fs (SLO %s)  attained %d/%d  requeued %d  peak %d replicas\n",
			res.Name, chat.TTFT.P95Sec, verdict, chat.SLOAttained, chat.Requests, c.Requeued, c.PeakReplicas())
		fmt.Printf("    replica-seconds %7.1f  cost proxy %7.1f  goodput %7.1f tok/s  sim %.1fs\n\n",
			c.ReplicaSeconds, c.CostProxy, c.GoodputTPS, c.SimEndSec)
	}

	staticRep := rep.Results[0].Cluster
	scaledRep := rep.Results[1].Cluster
	ratio := scaledRep.ReplicaSeconds / staticRep.ReplicaSeconds
	fmt.Printf("the autoscaler served the spike and the failure at %.0f%% of the static fleet's replica-seconds\n\n", 100*ratio)

	// The fleet timeline shows the whole story: ramp-up provisioning,
	// the failure at the peak, and the scale-down as the spike fades.
	fmt.Println("autoscaled fleet timeline:")
	if err := scaledRep.WriteFleetTSV(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
