// Heterogeneous: the Fig. 5(b) system — an NPU pool running the
// compute-bound operators and a separate PIM pool running the
// memory-bound attention core, connected by a high-bandwidth interconnect
// — compared against the homogeneous all-NPU system and the Fig. 5(a)
// directly-attached NPU+PIM system with NeuPIMs-style sub-batch
// interleaving.
package main

import (
	"fmt"
	"log"

	llmservingsim "repro"
)

func main() {
	// Alpaca-like instruction traffic, as in the paper's heterogeneous
	// evaluation (Section VI-B, Fig. 7).
	trace, err := llmservingsim.AlpacaTrace(64, 16.0, 7)
	if err != nil {
		log.Fatal(err)
	}

	base := llmservingsim.DefaultConfig()
	base.Model = "gpt3-7b"
	base.NPUs = 4
	base.Parallelism = "tensor"

	systems := []struct {
		name string
		mut  func(*llmservingsim.Config)
	}{
		{"NPU only (homogeneous)", func(c *llmservingsim.Config) {}},
		{"NPU+PIM local (Fig 5a)", func(c *llmservingsim.Config) { c.PIMType = "local" }},
		{"NPU+PIM local, sub-batched", func(c *llmservingsim.Config) { c.PIMType = "local"; c.SubBatches = 2 }},
		{"NPU pool + PIM pool (Fig 5b)", func(c *llmservingsim.Config) { c.PIMType = "pool"; c.PIMPoolSize = 4 }},
	}

	fmt.Println("system                            iters   sim_end    gen tok/s   p95 lat")
	for _, s := range systems {
		cfg := base
		s.mut(&cfg)
		sim, err := llmservingsim.New(cfg, trace)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-32s %6d  %7.2fs  %9.1f  %8.3fs\n",
			s.name, rep.Iterations, rep.SimEndSec, rep.GenTPS, rep.Latency.P95Sec)
	}
}
