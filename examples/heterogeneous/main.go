// Heterogeneous: the Fig. 5(b) system — an NPU pool running the
// compute-bound operators and a separate PIM pool running the
// memory-bound attention core, connected by a high-bandwidth interconnect
// — compared against the homogeneous all-NPU system and the Fig. 5(a)
// directly-attached NPU+PIM system with NeuPIMs-style sub-batch
// interleaving. The four systems run concurrently as one Sweep.
package main

import (
	"fmt"
	"log"

	llmservingsim "repro"
)

func main() {
	// Alpaca-like instruction traffic, as in the paper's heterogeneous
	// evaluation (Section VI-B, Fig. 7).
	trace, err := llmservingsim.AlpacaTrace(64, 16.0, 7)
	if err != nil {
		log.Fatal(err)
	}

	base := llmservingsim.DefaultConfig()
	base.Model = "gpt3-7b"
	base.NPUs = 4
	base.Parallelism = llmservingsim.ParallelismTensor

	scenarios := llmservingsim.Variants(base, trace,
		llmservingsim.Variant{Name: "NPU only (homogeneous)"},
		llmservingsim.Variant{Name: "NPU+PIM local (Fig 5a)", Apply: func(c *llmservingsim.Config) {
			c.PIMType = llmservingsim.PIMLocal
		}},
		llmservingsim.Variant{Name: "NPU+PIM local, sub-batched", Apply: func(c *llmservingsim.Config) {
			c.PIMType = llmservingsim.PIMLocal
			c.SubBatches = 2
		}},
		llmservingsim.Variant{Name: "NPU pool + PIM pool (Fig 5b)", Apply: func(c *llmservingsim.Config) {
			c.PIMType = llmservingsim.PIMPool
			c.PIMPoolSize = 4
		}},
	)

	report, err := llmservingsim.NewSweep(scenarios...).Run()
	if err != nil {
		log.Fatal(err)
	}
	if err := report.Err(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("system                            iters   sim_end    gen tok/s   p95 lat")
	for _, res := range report.Results {
		rep := res.Report
		fmt.Printf("%-32s %6d  %7.2fs  %9.1f  %8.3fs\n",
			res.Name, rep.Iterations, rep.SimEndSec, rep.GenTPS, rep.Latency.P95Sec)
	}
}
