// Sessions: a walkthrough of the ServeGen-style client/session layer
// and why prefix-aware routing matters more for conversations than for
// static class mixes. Two traffic shapes with the same classes and the
// same aggregate rates hit the same 2-replica cluster:
//
//   - "classes": the plain multi-class mix — every request carries only
//     its class's fixed system prompt, so there are just two shared
//     prefix chains and even a cache-blind router keeps warm copies of
//     both on each replica;
//   - "sessions": a client population (heavy-tailed zipf rates) holding
//     multi-turn conversations — turn n's prompt replays all prior
//     turns as a per-conversation cached prefix, so there are hundreds
//     of short-lived prefix chains and a turn only hits if it lands on
//     the replica that served the conversation's previous turn.
//
// Each shape runs under round-robin, least-loaded, and prefix-affinity
// routing in one deterministic sweep. The report splits first-turn
// TTFT (always a cold prefill) from later-turn TTFT (rides the cached
// context when routing cooperates) and shows the affinity payoff is
// much larger on session traffic: scattering conversations re-prefills
// their whole history, while scattering a two-class mix barely hurts.
// Re-running reproduces the numbers bit for bit.
package main

import (
	"fmt"
	"log"
	"time"

	llmservingsim "repro"
)

func main() {
	// Two classes with modest fixed system prompts. The interesting
	// prefix state in the session runs is the conversation context that
	// grows on top of these, not the prompts themselves.
	classes := []llmservingsim.TrafficClass{
		{Name: "chat", Dist: "fixed-96-64", RatePerSec: 160,
			TTFT: 20 * time.Millisecond, TPOT: 5 * time.Millisecond, PrefixTokens: 256},
		{Name: "api", Dist: "fixed-64-32", RatePerSec: 80,
			TTFT: 20 * time.Millisecond, TPOT: 5 * time.Millisecond, PrefixTokens: 256},
	}

	// A population of 60 clients with zipf-skewed rates holding ~4-turn
	// conversations: turn n's prompt carries every earlier turn (clamped
	// at 1024 tokens) as a per-conversation prefix under the class's
	// system prompt.
	pop := llmservingsim.PopulationSpec{Clients: 60, RateDist: "zipf", Skew: 1.1}
	sess := llmservingsim.SessionSpec{MeanTurns: 4, ThinkMean: 2, ThinkSigma: 0.6, MaxContext: 1024}

	const n, seed = 600, 7
	static, err := llmservingsim.MultiClassTrace(classes, n, llmservingsim.Ramp{}, seed)
	if err != nil {
		log.Fatal(err)
	}
	conversational, err := llmservingsim.PopulationTrace(classes, pop, sess, n, seed)
	if err != nil {
		log.Fatal(err)
	}

	// The gpt2 replica shape of the golden suite with enough KV budget
	// to keep idle conversation chains resident between turns. A
	// conversation's chain lives only on the replica that served it, so
	// router placement — not capacity — decides whether a later turn
	// finds its history cached or re-prefills it from scratch.
	cfg := llmservingsim.DefaultConfig()
	cfg.Model = "gpt2"
	cfg.NPUs = 2
	cfg.Parallelism = llmservingsim.ParallelismTensor
	cfg.PerfModel = llmservingsim.PerfModelRoofline
	cfg.Scheduling = llmservingsim.SchedChunked
	cfg.PrefixCache = llmservingsim.PrefixCacheGPU

	var scenarios []llmservingsim.ClusterScenario
	for _, traffic := range []struct {
		name  string
		trace []llmservingsim.Request
	}{
		{"classes", static},
		{"sessions", conversational},
	} {
		for _, router := range []llmservingsim.RouterPolicy{
			llmservingsim.RouterRoundRobin,
			llmservingsim.RouterLeastLoaded,
			llmservingsim.RouterPrefixAffinity,
		} {
			scenarios = append(scenarios, llmservingsim.ClusterScenario{
				Name:     traffic.name + "/" + router.String(),
				Config:   cfg,
				Replicas: 2,
				Router:   router,
				Classes:  classes,
				Trace:    traffic.trace,
			})
		}
	}

	rep, err := (&llmservingsim.Sweep{}).AddCluster(scenarios...).Run()
	if err != nil {
		log.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("session traffic vs static classes: %d requests each over 2 replicas\n\n", n)
	type outcome struct{ hitRate, ttftSec float64 }
	byRun := map[string]outcome{}
	for _, res := range rep.Results {
		c := res.Cluster
		fmt.Printf("=== %-24s hit rate %5.1f %%  saved %6d toks  goodput %7.1f tok/s\n",
			res.Name, 100*c.PrefixHitRate, c.PrefixTokensSaved, c.GoodputTPS)
		// The comparable "did routing help" metric: for sessions, the
		// p95 TTFT of turns >= 2 (the ones with history to reuse); for
		// the static mix, every request's mean TTFT.
		ttft := c.Latency.TTFTSec
		if ss := c.Sessions; ss != nil {
			fmt.Printf("    %d sessions (%d completed), turn-1 p95 ttft %6.1f ms, later-turn p95 ttft %6.1f ms, session goodput %7.1f tok/s\n",
				ss.Sessions, ss.Completed,
				1e3*ss.FirstTurnTTFT.P95Sec, 1e3*ss.LaterTurnTTFT.P95Sec, ss.GoodputTPS)
			ttft = ss.LaterTurnTTFT.P95Sec
		}
		byRun[res.Name] = outcome{hitRate: c.PrefixHitRate, ttftSec: ttft}
		fmt.Println()
	}

	for _, traffic := range []string{"classes", "sessions"} {
		rr, pa := byRun[traffic+"/round-robin"], byRun[traffic+"/prefix-affinity"]
		fmt.Printf("prefix-affinity over round-robin on %-9s hit rate %+5.1f pp, ttft %+6.1f %%\n",
			traffic, 100*(pa.hitRate-rr.hitRate), 100*(pa.ttftSec-rr.ttftSec)/rr.ttftSec)
	}
}
