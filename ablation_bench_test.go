// Ablation benchmarks for the design choices DESIGN.md calls out: each
// isolates one mechanism (result reuse, paged KV, iteration-level
// scheduling, selective batching, sub-batch interleaving) and reports its
// effect on either simulation speed or simulated serving quality.
package llmservingsim

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/kvcache"
	"repro/internal/model"
	"repro/internal/network"
	"repro/internal/sched"
	"repro/internal/workload"
)

func ablationOpts(b *testing.B, modelName string, tp int) core.Options {
	b.Helper()
	topo, err := network.Build(network.Tensor, tp, 0, config.DefaultLink(), config.DefaultLink())
	if err != nil {
		b.Fatal(err)
	}
	return core.Options{
		Model: model.MustLookup(modelName),
		Topo:  topo,
		NPU:   config.DefaultNPU(),
		PIM:   config.DefaultPIM(),
		Reuse: core.ReuseAll(),
	}
}

func runAblation(b *testing.B, opts core.Options, reqs []workload.Request) *core.Report {
	b.Helper()
	sim, err := core.New(opts, reqs)
	if err != nil {
		b.Fatal(err)
	}
	rep, err := sim.Run()
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

// BenchmarkAblationReuseTechniques separates the two reuse techniques the
// paper bundles in Section IV-C: model-redundancy reuse (one block per
// model) and computation reuse (cross-iteration caching), measured as
// whole-trace simulation wall time on identical simulated results.
func BenchmarkAblationReuseTechniques(b *testing.B) {
	trace, err := workload.PoissonTrace(workload.Alpaca(), 24, 16, 11)
	if err != nil {
		b.Fatal(err)
	}
	variants := []struct {
		name  string
		reuse core.ReuseOptions
	}{
		{"both-off", core.ReuseOptions{}},
		{"redundancy-only", core.ReuseOptions{ModelRedundancy: true}},
		{"computation-only", core.ReuseOptions{ComputationReuse: true}},
		{"both-on", core.ReuseAll()},
	}
	for i := 0; i < b.N; i++ {
		show := printOnce("BenchmarkAblationReuseTechniques")
		if show {
			fmt.Printf("\n=== Ablation: reuse techniques (gpt3-7b TP2, 24 Alpaca requests) ===\n")
			fmt.Printf("%-18s %12s %12s %14s %10s\n", "variant", "wall", "simulated", "engine calls", "hit rate")
		}
		var simEnd float64
		for _, v := range variants {
			opts := ablationOpts(b, "gpt3-7b", 2)
			opts.Reuse = v.reuse
			rep := runAblation(b, opts, trace)
			if simEnd == 0 {
				simEnd = rep.SimEnd.Seconds()
			} else if rep.SimEnd.Seconds() != simEnd {
				b.Fatalf("%s changed simulated results: %.6f vs %.6f", v.name, rep.SimEnd.Seconds(), simEnd)
			}
			if show {
				fmt.Printf("%-18s %12v %11.2fs %14d %9.0f%%\n",
					v.name, rep.WallClock.Round(time.Millisecond), rep.SimEnd.Seconds(),
					rep.NPUStats.SimulateCalls, 100*rep.NPUStats.HitRate())
			}
		}
	}
}

// BenchmarkAblationKVPaging compares vLLM-style paged KV management with
// conventional max-length preallocation on a memory-constrained system:
// paging admits larger batches and finishes the trace sooner.
func BenchmarkAblationKVPaging(b *testing.B) {
	trace, err := workload.PoissonTrace(workload.ShareGPT(), 48, 16, 13)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		show := printOnce("BenchmarkAblationKVPaging")
		if show {
			fmt.Printf("\n=== Ablation: KV cache management (gpt3-7b TP1, 48 ShareGPT requests) ===\n")
			fmt.Printf("%-8s %12s %12s %12s %10s\n", "policy", "sim end", "gen tok/s", "p95 lat", "evictions")
		}
		for _, policy := range []kvcache.Policy{kvcache.Paged, kvcache.MaxLen} {
			opts := ablationOpts(b, "gpt3-7b", 1)
			opts.KVPolicy = policy
			rep := runAblation(b, opts, trace)
			if show {
				fmt.Printf("%-8s %11.2fs %12.1f %11.3fs %10d\n",
					policy, rep.SimEnd.Seconds(), rep.GenTPS, rep.Latency.P95Sec, rep.KV.Evictions)
			}
		}
	}
}

// BenchmarkAblationScheduling compares Orca iteration-level scheduling
// against static run-to-completion batching.
func BenchmarkAblationScheduling(b *testing.B) {
	trace, err := workload.PoissonTrace(workload.Alpaca(), 48, 24, 17)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		show := printOnce("BenchmarkAblationScheduling")
		if show {
			fmt.Printf("\n=== Ablation: scheduling policy (gpt3-7b TP2, 48 Alpaca requests) ===\n")
			fmt.Printf("%-8s %12s %12s %12s %12s\n", "policy", "sim end", "gen tok/s", "mean lat", "ttft")
		}
		for _, policy := range []sched.Policy{sched.Orca, sched.Static} {
			opts := ablationOpts(b, "gpt3-7b", 2)
			opts.Sched.Policy = policy
			rep := runAblation(b, opts, trace)
			if show {
				fmt.Printf("%-8s %11.2fs %12.1f %11.3fs %11.3fs\n",
					policy, rep.SimEnd.Seconds(), rep.GenTPS, rep.Latency.MeanSec, rep.Latency.MeanTTFTSec)
			}
		}
	}
}

// BenchmarkAblationSelectiveBatching compares Megatron-style head-split
// attention against Orca's selective batching (request-split) on a
// tensor-parallel group with skewed request lengths.
func BenchmarkAblationSelectiveBatching(b *testing.B) {
	trace, err := workload.PoissonTrace(workload.ShareGPT(), 32, 16, 19)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		show := printOnce("BenchmarkAblationSelectiveBatching")
		if show {
			fmt.Printf("\n=== Ablation: attention placement (gpt3-7b TP4, 32 ShareGPT requests) ===\n")
			fmt.Printf("%-14s %12s %12s %12s\n", "placement", "sim end", "gen tok/s", "mean lat")
		}
		for _, selective := range []bool{false, true} {
			opts := ablationOpts(b, "gpt3-7b", 4)
			opts.SelectiveBatching = selective
			rep := runAblation(b, opts, trace)
			name := "head-split"
			if selective {
				name = "request-split"
			}
			if show {
				fmt.Printf("%-14s %11.2fs %12.1f %11.3fs\n",
					name, rep.SimEnd.Seconds(), rep.GenTPS, rep.Latency.MeanSec)
			}
		}
	}
}

// BenchmarkAblationSubBatchInterleaving measures NeuPIMs-style sub-batch
// interleaving on the NPU+PIM system with long contexts (where PIM-side
// attention is heavy enough for overlap to pay).
func BenchmarkAblationSubBatchInterleaving(b *testing.B) {
	// Long-context requests make the PIM side substantial.
	trace := workload.UniformBatch(24, 768, 64)
	for i := 0; i < b.N; i++ {
		show := printOnce("BenchmarkAblationSubBatchInterleaving")
		if show {
			fmt.Printf("\n=== Ablation: sub-batch interleaving (gpt3-7b TP2 NPU+PIM, 24 long requests) ===\n")
			fmt.Printf("%-14s %12s %12s\n", "sub-batches", "sim end", "gen tok/s")
		}
		for _, n := range []int{1, 2, 4} {
			opts := ablationOpts(b, "gpt3-7b", 2)
			opts.PIMMode = core.PIMLocal
			opts.Sched.SubBatches = n
			rep := runAblation(b, opts, trace)
			if show {
				fmt.Printf("%-14d %11.2fs %12.1f\n", n, rep.SimEnd.Seconds(), rep.GenTPS)
			}
		}
	}
}

// BenchmarkAblationParallelism sweeps the five Fig. 9 strategies as full
// serving runs, reporting simulated serving quality rather than simulator
// speed (the complementary view to Fig. 9).
func BenchmarkAblationParallelism(b *testing.B) {
	trace, err := workload.PoissonTrace(workload.Alpaca(), 16, 4, 23)
	if err != nil {
		b.Fatal(err)
	}
	strategies := []struct{ tp, pp int }{{16, 1}, {8, 2}, {4, 4}, {2, 8}, {1, 16}}
	for i := 0; i < b.N; i++ {
		show := printOnce("BenchmarkAblationParallelism")
		if show {
			fmt.Printf("\n=== Ablation: parallelism strategy (gpt3-13b, 16 NPUs, 16 Alpaca requests) ===\n")
			fmt.Printf("%-12s %12s %12s %12s\n", "strategy", "sim end", "gen tok/s", "ttft")
		}
		for _, s := range strategies {
			topo, err := network.Build(network.Hybrid, 16, s.pp, config.DefaultLink(), config.DefaultLink())
			if err != nil {
				b.Fatal(err)
			}
			opts := ablationOpts(b, "gpt3-13b", 1)
			opts.Topo = topo
			rep := runAblation(b, opts, trace)
			if show {
				fmt.Printf("TP%-2d PP%-4d %11.2fs %12.1f %11.3fs\n",
					s.tp, s.pp, rep.SimEnd.Seconds(), rep.GenTPS, rep.Latency.MeanTTFTSec)
			}
		}
	}
}

// BenchmarkSaturationSweep finds the serving capacity of a configuration
// by sweeping the Poisson arrival rate — the capacity-planning use case a
// serving simulator exists for. Below saturation the system drains the
// trace shortly after the last arrival; past it, latency blows up.
func BenchmarkSaturationSweep(b *testing.B) {
	rates := []float64{2, 4, 8, 16, 32}
	for i := 0; i < b.N; i++ {
		show := printOnce("BenchmarkSaturationSweep")
		if show {
			fmt.Printf("\n=== Saturation sweep (gpt3-7b TP4, 32 ShareGPT requests) ===\n")
			fmt.Printf("%-10s %12s %12s %12s\n", "rate req/s", "sim end", "gen tok/s", "p95 lat")
		}
		for _, rate := range rates {
			trace, err := workload.PoissonTrace(workload.ShareGPT(), 32, rate, 31)
			if err != nil {
				b.Fatal(err)
			}
			opts := ablationOpts(b, "gpt3-7b", 4)
			rep := runAblation(b, opts, trace)
			if show {
				fmt.Printf("%-10.0f %11.2fs %12.1f %11.3fs\n",
					rate, rep.SimEnd.Seconds(), rep.GenTPS, rep.Latency.P95Sec)
			}
		}
	}
}
