package llmservingsim

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/kvcache"
	"repro/internal/network"
	"repro/internal/sched"
)

// The enum types below replace the artifact's stringly-typed simulation
// parameters (parallel, scheduling, kv_manage, pim_type). Each has a
// Parse function accepting the artifact's CLI spellings (the empty
// string selects the artifact default) and a String method returning the
// canonical spelling, so round-tripping through flags and TSV output is
// lossless. All four implement flag.Value, so they can be bound to
// command-line flags directly with flag.Var. The zero value of every
// enum is the artifact default, making zero-valued Config fields safe.

// Parallelism selects how the model is distributed across accelerators
// (the artifact's "parallel" parameter). The zero value is
// ParallelismHybrid, the artifact default.
type Parallelism int

const (
	// ParallelismHybrid pipelines across NPU groups and shards tensors
	// within each group (requires Config.NPUGroups).
	ParallelismHybrid Parallelism = iota
	// ParallelismTensor shards every weight matrix across all nodes.
	ParallelismTensor
	// ParallelismPipeline assigns contiguous layer ranges to nodes.
	ParallelismPipeline
)

// ParseParallelism converts the artifact's CLI values ("tensor",
// "pipeline", "hybrid"; "" selects the default, hybrid).
func ParseParallelism(s string) (Parallelism, error) {
	switch s {
	case "hybrid", "":
		return ParallelismHybrid, nil
	case "tensor":
		return ParallelismTensor, nil
	case "pipeline":
		return ParallelismPipeline, nil
	default:
		return 0, fmt.Errorf("llmservingsim: unknown parallelism %q (want tensor|pipeline|hybrid)", s)
	}
}

func (p Parallelism) String() string {
	switch p {
	case ParallelismHybrid:
		return "hybrid"
	case ParallelismTensor:
		return "tensor"
	case ParallelismPipeline:
		return "pipeline"
	default:
		return fmt.Sprintf("Parallelism(%d)", int(p))
	}
}

// Set implements flag.Value.
func (p *Parallelism) Set(s string) error {
	v, err := ParseParallelism(s)
	if err != nil {
		return err
	}
	*p = v
	return nil
}

func (p Parallelism) valid() bool {
	return p >= ParallelismHybrid && p <= ParallelismPipeline
}

func (p Parallelism) internal() network.Parallelism {
	switch p {
	case ParallelismTensor:
		return network.Tensor
	case ParallelismPipeline:
		return network.Pipeline
	default:
		return network.Hybrid
	}
}

// SchedPolicy selects the batch scheduling policy (the artifact's
// "scheduling" parameter). The zero value is SchedOrca, the artifact
// default.
type SchedPolicy int

const (
	// SchedOrca is Orca-style iteration-level scheduling: requests join
	// and leave the running batch at iteration boundaries.
	SchedOrca SchedPolicy = iota
	// SchedStatic runs each admitted batch to full completion before
	// admitting new requests.
	SchedStatic
	// SchedChunked is Orca-style continuous batching with chunked
	// prefill: prompts longer than Config.PrefillChunk are split across
	// iterations so long prefills don't stall decode latency.
	SchedChunked
)

// ParseSchedPolicy converts the artifact's CLI values ("orca" or
// "iteration", "static" or "batch", plus "chunked" or "chunk"; ""
// selects the default, orca).
func ParseSchedPolicy(s string) (SchedPolicy, error) {
	switch s {
	case "orca", "iteration", "":
		return SchedOrca, nil
	case "static", "batch":
		return SchedStatic, nil
	case "chunked", "chunk":
		return SchedChunked, nil
	default:
		return 0, fmt.Errorf("llmservingsim: unknown scheduling policy %q (want orca|static|chunked)", s)
	}
}

func (p SchedPolicy) String() string {
	switch p {
	case SchedOrca:
		return "orca"
	case SchedStatic:
		return "static"
	case SchedChunked:
		return "chunked"
	default:
		return fmt.Sprintf("SchedPolicy(%d)", int(p))
	}
}

// Set implements flag.Value.
func (p *SchedPolicy) Set(s string) error {
	v, err := ParseSchedPolicy(s)
	if err != nil {
		return err
	}
	*p = v
	return nil
}

func (p SchedPolicy) valid() bool { return p >= SchedOrca && p <= SchedChunked }

func (p SchedPolicy) internal() sched.Policy {
	switch p {
	case SchedStatic:
		return sched.Static
	case SchedChunked:
		return sched.Chunked
	default:
		return sched.Orca
	}
}

// KVPolicy selects KV-cache memory management (the artifact's
// "kv_manage" parameter). The zero value is KVPaged, the artifact
// default.
type KVPolicy int

const (
	// KVPaged is vLLM-style paged allocation at KVPageTokens granularity.
	KVPaged KVPolicy = iota
	// KVMaxLen reserves each request's maximum sequence length up front.
	KVMaxLen
)

// ParseKVPolicy converts the artifact's CLI values ("vllm" or "paged",
// "maxlen" or "max"; "" selects the default, vllm).
func ParseKVPolicy(s string) (KVPolicy, error) {
	switch s {
	case "vllm", "paged", "":
		return KVPaged, nil
	case "maxlen", "max":
		return KVMaxLen, nil
	default:
		return 0, fmt.Errorf("llmservingsim: unknown kv policy %q (want vllm|maxlen)", s)
	}
}

func (p KVPolicy) String() string {
	switch p {
	case KVPaged:
		return "vllm"
	case KVMaxLen:
		return "maxlen"
	default:
		return fmt.Sprintf("KVPolicy(%d)", int(p))
	}
}

// Set implements flag.Value.
func (p *KVPolicy) Set(s string) error {
	v, err := ParseKVPolicy(s)
	if err != nil {
		return err
	}
	*p = v
	return nil
}

func (p KVPolicy) valid() bool { return p == KVPaged || p == KVMaxLen }

func (p KVPolicy) internal() kvcache.Policy {
	if p == KVMaxLen {
		return kvcache.MaxLen
	}
	return kvcache.Paged
}

// PrefixCacheMode selects whether (and where) the KV manager caches
// shared prompt prefixes across requests. The zero value is
// PrefixCacheOff: prefix caching is strictly opt-in, leaving default
// runs bit-identical to earlier releases.
type PrefixCacheMode int

const (
	// PrefixCacheOff disables prefix caching.
	PrefixCacheOff PrefixCacheMode = iota
	// PrefixCacheGPU caches shared prefix blocks in device memory only;
	// blocks evicted under pressure are dropped and recomputed on the
	// next miss.
	PrefixCacheGPU
	// PrefixCacheTiered adds a host (CPU) spill tier: prefix blocks
	// evicted from the device spill over the host link and reload on the
	// next hit instead of being recomputed. Capacity is bounded by
	// Config.KVHostMemGB (0 = unbounded host tier).
	PrefixCacheTiered
)

// ParsePrefixCacheMode converts CLI values ("off", "gpu" or "device",
// "tiered" or "cpu"; "" selects the default, off).
func ParsePrefixCacheMode(s string) (PrefixCacheMode, error) {
	switch s {
	case "off", "":
		return PrefixCacheOff, nil
	case "gpu", "device":
		return PrefixCacheGPU, nil
	case "tiered", "cpu":
		return PrefixCacheTiered, nil
	default:
		return 0, fmt.Errorf("llmservingsim: unknown prefix cache mode %q (want off|gpu|tiered)", s)
	}
}

func (m PrefixCacheMode) String() string {
	switch m {
	case PrefixCacheOff:
		return "off"
	case PrefixCacheGPU:
		return "gpu"
	case PrefixCacheTiered:
		return "tiered"
	default:
		return fmt.Sprintf("PrefixCacheMode(%d)", int(m))
	}
}

// Set implements flag.Value.
func (m *PrefixCacheMode) Set(s string) error {
	v, err := ParsePrefixCacheMode(s)
	if err != nil {
		return err
	}
	*m = v
	return nil
}

func (m PrefixCacheMode) valid() bool { return m >= PrefixCacheOff && m <= PrefixCacheTiered }

func (m PrefixCacheMode) internal() kvcache.PrefixMode {
	switch m {
	case PrefixCacheGPU:
		return kvcache.PrefixDevice
	case PrefixCacheTiered:
		return kvcache.PrefixTiered
	default:
		return kvcache.PrefixOff
	}
}

// PIMMode selects how PIM devices participate (the artifact's
// "pim_type" parameter). The zero value is PIMNone.
type PIMMode int

const (
	// PIMNone runs a homogeneous NPU system.
	PIMNone PIMMode = iota
	// PIMLocal pairs each NPU with a directly-attached PIM device
	// (Fig. 5(a)).
	PIMLocal
	// PIMPool places PIM devices in a separate pool reached over the
	// interconnect (Fig. 5(b)).
	PIMPool
)

// ParsePIMMode converts the artifact's CLI values ("none", "local",
// "pool"; "" selects the default, none).
func ParsePIMMode(s string) (PIMMode, error) {
	switch s {
	case "none", "":
		return PIMNone, nil
	case "local":
		return PIMLocal, nil
	case "pool":
		return PIMPool, nil
	default:
		return 0, fmt.Errorf("llmservingsim: unknown pim mode %q (want none|local|pool)", s)
	}
}

func (m PIMMode) String() string {
	switch m {
	case PIMNone:
		return "none"
	case PIMLocal:
		return "local"
	case PIMPool:
		return "pool"
	default:
		return fmt.Sprintf("PIMMode(%d)", int(m))
	}
}

// Set implements flag.Value.
func (m *PIMMode) Set(s string) error {
	v, err := ParsePIMMode(s)
	if err != nil {
		return err
	}
	*m = v
	return nil
}

func (m PIMMode) valid() bool { return m >= PIMNone && m <= PIMPool }

func (m PIMMode) internal() core.PIMMode {
	switch m {
	case PIMLocal:
		return core.PIMLocal
	case PIMPool:
		return core.PIMPool
	default:
		return core.PIMNone
	}
}

// PerfModel selects the performance-model backend that prices each
// simulated iteration. The zero value is PerfModelAstra, the full
// pipeline the artifact ships.
type PerfModel int

const (
	// PerfModelAstra runs the paper's full pipeline per iteration:
	// execution-engine compilation/simulation of every operator, graph
	// conversion, and discrete-event system simulation. Highest
	// fidelity; bit-identical to the pre-backend simulator.
	PerfModelAstra PerfModel = iota
	// PerfModelRoofline prices iterations analytically against a device
	// roofline (peak FLOPs vs memory bandwidth) plus analytic
	// collective costs — orders of magnitude faster, for large sweeps
	// and capacity planning.
	PerfModelRoofline
)

// ParsePerfModel converts CLI values ("astra", "roofline" or
// "analytical"; "" selects the default, astra).
func ParsePerfModel(s string) (PerfModel, error) {
	switch s {
	case "astra", "":
		return PerfModelAstra, nil
	case "roofline", "analytical":
		return PerfModelRoofline, nil
	default:
		return 0, fmt.Errorf("llmservingsim: unknown perf model %q (want astra|roofline)", s)
	}
}

func (p PerfModel) String() string {
	switch p {
	case PerfModelAstra:
		return "astra"
	case PerfModelRoofline:
		return "roofline"
	default:
		return fmt.Sprintf("PerfModel(%d)", int(p))
	}
}

// Set implements flag.Value.
func (p *PerfModel) Set(s string) error {
	v, err := ParsePerfModel(s)
	if err != nil {
		return err
	}
	*p = v
	return nil
}

func (p PerfModel) valid() bool {
	return p >= PerfModelAstra && p <= PerfModelRoofline
}

// RouterPolicy selects how a cluster routes admitted requests across
// replicas. The zero value is RouterRoundRobin.
type RouterPolicy int

const (
	// RouterRoundRobin cycles through replicas in index order.
	RouterRoundRobin RouterPolicy = iota
	// RouterLeastLoaded places each request on the replica with the
	// fewest queued tokens (join-shortest-queue).
	RouterLeastLoaded
	// RouterAffinity hashes the request's traffic class to a fixed
	// replica, keeping shared-prefix traffic on one instance.
	RouterAffinity
	// RouterPrefixAffinity places each request on the replica caching
	// the longest prefix of its class, falling back to least-loaded when
	// no replica has any of it cached. Requires prefix caching to see
	// non-zero cache state; without it the policy is least-loaded.
	RouterPrefixAffinity
)

// ParseRouterPolicy converts CLI values ("round-robin" or "rr",
// "least-loaded" or "least", "affinity" or "session", "prefix-affinity"
// or "prefix"; "" selects the default, round-robin).
func ParseRouterPolicy(s string) (RouterPolicy, error) {
	switch s {
	case "round-robin", "rr", "":
		return RouterRoundRobin, nil
	case "least-loaded", "least":
		return RouterLeastLoaded, nil
	case "affinity", "session":
		return RouterAffinity, nil
	case "prefix-affinity", "prefix":
		return RouterPrefixAffinity, nil
	default:
		return 0, fmt.Errorf("llmservingsim: unknown router %q (want round-robin|least-loaded|affinity|prefix-affinity)", s)
	}
}

func (p RouterPolicy) String() string {
	switch p {
	case RouterRoundRobin:
		return "round-robin"
	case RouterLeastLoaded:
		return "least-loaded"
	case RouterAffinity:
		return "affinity"
	case RouterPrefixAffinity:
		return "prefix-affinity"
	default:
		return fmt.Sprintf("RouterPolicy(%d)", int(p))
	}
}

// Set implements flag.Value.
func (p *RouterPolicy) Set(s string) error {
	v, err := ParseRouterPolicy(s)
	if err != nil {
		return err
	}
	*p = v
	return nil
}

func (p RouterPolicy) valid() bool {
	return p >= RouterRoundRobin && p <= RouterPrefixAffinity
}

// internal returns the internal/cluster registry name.
func (p RouterPolicy) internal() string {
	switch p {
	case RouterLeastLoaded:
		return cluster.RouterLeastLoad
	case RouterAffinity:
		return cluster.RouterAffinity
	case RouterPrefixAffinity:
		return cluster.RouterPrefixAffinity
	default:
		return cluster.RouterRoundRobin
	}
}

// AdmissionPolicy selects how a cluster gates arrivals before routing.
// The zero value is AdmitAll.
type AdmissionPolicy int

const (
	// AdmitAll admits every arrival (unbounded queues).
	AdmitAll AdmissionPolicy = iota
	// AdmitQueueCap rejects arrivals once the cluster holds
	// AdmissionLimit*Replicas queued requests (aggregate back-pressure;
	// per-replica balance is the router's job).
	AdmitQueueCap
	// AdmitTokenBudget rejects arrivals that would push the cluster's
	// queued token total past AdmissionLimit.
	AdmitTokenBudget
)

// ParseAdmissionPolicy converts CLI values ("all" or "unbounded",
// "queue-cap" or "queue", "token-budget" or "tokens"; "" selects the
// default, all).
func ParseAdmissionPolicy(s string) (AdmissionPolicy, error) {
	switch s {
	case "all", "unbounded", "":
		return AdmitAll, nil
	case "queue-cap", "queue":
		return AdmitQueueCap, nil
	case "token-budget", "tokens":
		return AdmitTokenBudget, nil
	default:
		return 0, fmt.Errorf("llmservingsim: unknown admission policy %q (want all|queue-cap|token-budget)", s)
	}
}

func (p AdmissionPolicy) String() string {
	switch p {
	case AdmitAll:
		return "all"
	case AdmitQueueCap:
		return "queue-cap"
	case AdmitTokenBudget:
		return "token-budget"
	default:
		return fmt.Sprintf("AdmissionPolicy(%d)", int(p))
	}
}

// Set implements flag.Value.
func (p *AdmissionPolicy) Set(s string) error {
	v, err := ParseAdmissionPolicy(s)
	if err != nil {
		return err
	}
	*p = v
	return nil
}

func (p AdmissionPolicy) valid() bool {
	return p >= AdmitAll && p <= AdmitTokenBudget
}

// internal returns the internal/cluster registry name.
func (p AdmissionPolicy) internal() string {
	switch p {
	case AdmitQueueCap:
		return cluster.AdmitQueueCap
	case AdmitTokenBudget:
		return cluster.AdmitTokenBudget
	default:
		return cluster.AdmitAll
	}
}

// AutoscalePolicy selects how a cluster resizes its fleet at runtime.
// The zero value is ScaleNone (a static fleet).
type AutoscalePolicy int

const (
	// ScaleNone keeps the fleet at its configured size.
	ScaleNone AutoscalePolicy = iota
	// ScaleQueueDepth sizes the fleet so each active replica holds at
	// most ScaleQueueTarget queued requests.
	ScaleQueueDepth
	// ScaleSLO steps the fleet by one replica per tick on SLO-attainment
	// pressure, holding inside the [ScaleSLOTarget, ScaleSLOHigh]
	// hysteresis band.
	ScaleSLO
	// ScaleScheduled follows the pre-planned ScaleSchedule step
	// function.
	ScaleScheduled
)

// ParseAutoscalePolicy converts CLI values ("none", "queue-depth" or
// "queue", "slo-target" or "slo", "scheduled"; "" selects the default,
// none).
func ParseAutoscalePolicy(s string) (AutoscalePolicy, error) {
	switch s {
	case "none", "":
		return ScaleNone, nil
	case "queue-depth", "queue":
		return ScaleQueueDepth, nil
	case "slo-target", "slo":
		return ScaleSLO, nil
	case "scheduled":
		return ScaleScheduled, nil
	default:
		return 0, fmt.Errorf("llmservingsim: unknown autoscaler %q (want none|queue-depth|slo-target|scheduled)", s)
	}
}

func (p AutoscalePolicy) String() string {
	switch p {
	case ScaleNone:
		return "none"
	case ScaleQueueDepth:
		return "queue-depth"
	case ScaleSLO:
		return "slo-target"
	case ScaleScheduled:
		return "scheduled"
	default:
		return fmt.Sprintf("AutoscalePolicy(%d)", int(p))
	}
}

// Set implements flag.Value.
func (p *AutoscalePolicy) Set(s string) error {
	v, err := ParseAutoscalePolicy(s)
	if err != nil {
		return err
	}
	*p = v
	return nil
}

func (p AutoscalePolicy) valid() bool {
	return p >= ScaleNone && p <= ScaleScheduled
}

// internal returns the internal/cluster registry name; ScaleNone has
// none.
func (p AutoscalePolicy) internal() string {
	switch p {
	case ScaleQueueDepth:
		return cluster.ScaleQueueDepth
	case ScaleSLO:
		return cluster.ScaleSLOTarget
	case ScaleScheduled:
		return cluster.ScaleScheduled
	default:
		return ""
	}
}

// ReplicaRole assigns a fleet entry's replicas to a serving pool in a
// disaggregated cluster. The zero value is RoleUnified: the replica
// runs both phases, the classic colocated deployment. A fleet mixing
// prefill and decode entries simulates disaggregated serving — prefill
// replicas compute the first token, then hand the KV cache to a decode
// replica over the interconnect.
type ReplicaRole int

const (
	// RoleUnified serves both prefill and decode (the default).
	RoleUnified ReplicaRole = iota
	// RolePrefill serves only the prompt phase; each request's KV cache
	// is shipped to a decode replica after the first token.
	RolePrefill
	// RoleDecode serves only the token-generation phase, starting from
	// a KV cache received from a prefill replica.
	RoleDecode
)

// ParseReplicaRole converts fleet-grammar values ("unified", "prefill",
// "decode"; "" selects the default, unified).
func ParseReplicaRole(s string) (ReplicaRole, error) {
	switch s {
	case "unified", "":
		return RoleUnified, nil
	case "prefill":
		return RolePrefill, nil
	case "decode":
		return RoleDecode, nil
	default:
		return 0, fmt.Errorf("llmservingsim: unknown replica role %q (want unified|prefill|decode)", s)
	}
}

func (p ReplicaRole) String() string {
	switch p {
	case RoleUnified:
		return "unified"
	case RolePrefill:
		return "prefill"
	case RoleDecode:
		return "decode"
	default:
		return fmt.Sprintf("ReplicaRole(%d)", int(p))
	}
}

// Set implements flag.Value.
func (p *ReplicaRole) Set(s string) error {
	v, err := ParseReplicaRole(s)
	if err != nil {
		return err
	}
	*p = v
	return nil
}

func (p ReplicaRole) valid() bool {
	return p >= RoleUnified && p <= RoleDecode
}

// internal returns the internal/cluster role.
func (p ReplicaRole) internal() cluster.Role {
	switch p {
	case RolePrefill:
		return cluster.RolePrefill
	case RoleDecode:
		return cluster.RoleDecode
	default:
		return cluster.RoleUnified
	}
}
