package llmservingsim

import (
	"errors"
	"flag"
	"io"
	"strings"
	"testing"

	"repro/internal/config"
)

// TestEnumRoundTrips: every enum value survives String -> Parse, and the
// artifact's alias spellings parse to the same values.
func TestEnumRoundTrips(t *testing.T) {
	for _, p := range []Parallelism{ParallelismHybrid, ParallelismTensor, ParallelismPipeline} {
		got, err := ParseParallelism(p.String())
		if err != nil || got != p {
			t.Errorf("Parallelism %v round-trip: got %v, %v", p, got, err)
		}
	}
	for _, p := range []SchedPolicy{SchedOrca, SchedStatic} {
		got, err := ParseSchedPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("SchedPolicy %v round-trip: got %v, %v", p, got, err)
		}
	}
	for _, p := range []KVPolicy{KVPaged, KVMaxLen} {
		got, err := ParseKVPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("KVPolicy %v round-trip: got %v, %v", p, got, err)
		}
	}
	for _, m := range []PIMMode{PIMNone, PIMLocal, PIMPool} {
		got, err := ParsePIMMode(m.String())
		if err != nil || got != m {
			t.Errorf("PIMMode %v round-trip: got %v, %v", m, got, err)
		}
	}

	if v, _ := ParseSchedPolicy("iteration"); v != SchedOrca {
		t.Errorf("alias iteration: %v", v)
	}
	if v, _ := ParseSchedPolicy("batch"); v != SchedStatic {
		t.Errorf("alias batch: %v", v)
	}
	if v, _ := ParseKVPolicy("paged"); v != KVPaged {
		t.Errorf("alias paged: %v", v)
	}
	if v, _ := ParseKVPolicy("max"); v != KVMaxLen {
		t.Errorf("alias max: %v", v)
	}
	for _, p := range []PerfModel{PerfModelAstra, PerfModelRoofline} {
		got, err := ParsePerfModel(p.String())
		if err != nil || got != p {
			t.Errorf("PerfModel %v round-trip: got %v, %v", p, got, err)
		}
	}
	if v, _ := ParsePerfModel("analytical"); v != PerfModelRoofline {
		t.Errorf("alias analytical: %v", v)
	}
	if v, _ := ParsePerfModel(""); v != PerfModelAstra {
		t.Errorf("empty perf model default: %v", v)
	}
	if _, err := ParsePerfModel("magic"); err == nil {
		t.Error("ParsePerfModel accepted garbage")
	}
	var pm PerfModel
	var _ flag.Value = &pm
	if err := pm.Set("roofline"); err != nil || pm != PerfModelRoofline {
		t.Errorf("PerfModel.Set: %v, %v", pm, err)
	}
}

// TestClusterEnumRoundTrips covers the cluster routing and admission
// enums: String -> Parse round-trips, aliases, empty-string defaults,
// invalid values, and the flag.Value contract.
func TestClusterEnumRoundTrips(t *testing.T) {
	for _, p := range []RouterPolicy{RouterRoundRobin, RouterLeastLoaded, RouterAffinity} {
		got, err := ParseRouterPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("RouterPolicy %v round-trip: got %v, %v", p, got, err)
		}
	}
	for _, p := range []AdmissionPolicy{AdmitAll, AdmitQueueCap, AdmitTokenBudget} {
		got, err := ParseAdmissionPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("AdmissionPolicy %v round-trip: got %v, %v", p, got, err)
		}
	}
	if v, _ := ParseRouterPolicy("rr"); v != RouterRoundRobin {
		t.Errorf("alias rr: %v", v)
	}
	if v, _ := ParseRouterPolicy("least"); v != RouterLeastLoaded {
		t.Errorf("alias least: %v", v)
	}
	if v, _ := ParseRouterPolicy("session"); v != RouterAffinity {
		t.Errorf("alias session: %v", v)
	}
	if v, _ := ParseAdmissionPolicy("unbounded"); v != AdmitAll {
		t.Errorf("alias unbounded: %v", v)
	}
	if v, _ := ParseAdmissionPolicy("queue"); v != AdmitQueueCap {
		t.Errorf("alias queue: %v", v)
	}
	if v, _ := ParseAdmissionPolicy("tokens"); v != AdmitTokenBudget {
		t.Errorf("alias tokens: %v", v)
	}
	if v, err := ParseRouterPolicy(""); err != nil || v != RouterRoundRobin {
		t.Errorf("empty router: %v, %v", v, err)
	}
	if v, err := ParseAdmissionPolicy(""); err != nil || v != AdmitAll {
		t.Errorf("empty admission: %v, %v", v, err)
	}
	if _, err := ParseRouterPolicy("bogus"); err == nil {
		t.Error("bogus router must fail")
	}
	if _, err := ParseAdmissionPolicy("bogus"); err == nil {
		t.Error("bogus admission must fail")
	}
	for _, p := range []AutoscalePolicy{ScaleNone, ScaleQueueDepth, ScaleSLO, ScaleScheduled} {
		got, err := ParseAutoscalePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("AutoscalePolicy %v round-trip: got %v, %v", p, got, err)
		}
	}
	if v, _ := ParseAutoscalePolicy("queue"); v != ScaleQueueDepth {
		t.Errorf("alias queue: %v", v)
	}
	if v, _ := ParseAutoscalePolicy("slo"); v != ScaleSLO {
		t.Errorf("alias slo: %v", v)
	}
	if v, err := ParseAutoscalePolicy(""); err != nil || v != ScaleNone {
		t.Errorf("empty autoscaler: %v, %v", v, err)
	}
	if _, err := ParseAutoscalePolicy("bogus"); err == nil {
		t.Error("bogus autoscaler must fail")
	}
	var as AutoscalePolicy
	asFS := flag.NewFlagSet("t", flag.ContinueOnError)
	asFS.SetOutput(io.Discard)
	asFS.Var(&as, "autoscaler", "")
	if err := asFS.Parse([]string{"-autoscaler", "slo-target"}); err != nil || as != ScaleSLO {
		t.Errorf("autoscaler flag parse: %v, %v", as, err)
	}
	if Autoscalers() == nil {
		t.Error("autoscaler registry listing must be non-empty")
	}

	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var r RouterPolicy
	var a AdmissionPolicy
	fs.Var(&r, "router", "")
	fs.Var(&a, "admission", "")
	if err := fs.Parse([]string{"-router", "least-loaded", "-admission", "token-budget"}); err != nil {
		t.Fatal(err)
	}
	if r != RouterLeastLoaded || a != AdmitTokenBudget {
		t.Errorf("flag parse: %v, %v", r, a)
	}
	if err := fs.Parse([]string{"-router", "bogus"}); err == nil {
		t.Error("bogus router flag must fail")
	}
	// The registry-facing names resolve for every enum value.
	if Routers() == nil || Admissions() == nil {
		t.Error("registry listings must be non-empty")
	}
}

// TestEnumDefaultsAndErrors: the empty string selects the artifact
// default (matching the enums' zero values), and garbage is rejected.
func TestEnumDefaultsAndErrors(t *testing.T) {
	if v, err := ParseParallelism(""); err != nil || v != ParallelismHybrid {
		t.Errorf("empty parallelism: %v, %v", v, err)
	}
	if v, err := ParseSchedPolicy(""); err != nil || v != SchedOrca {
		t.Errorf("empty scheduling: %v, %v", v, err)
	}
	if v, err := ParseKVPolicy(""); err != nil || v != KVPaged {
		t.Errorf("empty kv: %v, %v", v, err)
	}
	if v, err := ParsePIMMode(""); err != nil || v != PIMNone {
		t.Errorf("empty pim: %v, %v", v, err)
	}
	if _, err := ParseParallelism("nope"); err == nil {
		t.Error("bad parallelism accepted")
	}
	if _, err := ParseSchedPolicy("nope"); err == nil {
		t.Error("bad scheduling accepted")
	}
	if _, err := ParseKVPolicy("nope"); err == nil {
		t.Error("bad kv accepted")
	}
	if _, err := ParsePIMMode("nope"); err == nil {
		t.Error("bad pim accepted")
	}
}

// TestEnumFlagValues: the enums bind to command-line flags via flag.Var.
func TestEnumFlagValues(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var (
		par   Parallelism
		sched SchedPolicy
		kv    KVPolicy
		pim   PIMMode
	)
	fs.Var(&par, "parallel", "")
	fs.Var(&sched, "scheduling", "")
	fs.Var(&kv, "kv-manage", "")
	fs.Var(&pim, "pim-type", "")
	err := fs.Parse([]string{"-parallel", "tensor", "-scheduling", "static", "-kv-manage", "maxlen", "-pim-type", "pool"})
	if err != nil {
		t.Fatal(err)
	}
	if par != ParallelismTensor || sched != SchedStatic || kv != KVMaxLen || pim != PIMPool {
		t.Fatalf("parsed %v %v %v %v", par, sched, kv, pim)
	}
	fs2 := flag.NewFlagSet("test", flag.ContinueOnError)
	fs2.SetOutput(&strings.Builder{})
	fs2.Var(&par, "parallel", "")
	if err := fs2.Parse([]string{"-parallel", "bogus"}); err == nil {
		t.Fatal("bogus flag value accepted")
	}
}

// TestConfigValidate: every constraint yields a *ConfigError naming the
// offending field.
func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name  string
		mut   func(*Config)
		field string
	}{
		{"unknown model", func(c *Config) { c.Model = "nope" }, "Model"},
		{"zero npus", func(c *Config) { c.NPUs = 0 }, "NPUs"},
		{"negative npus", func(c *Config) { c.NPUs = -4 }, "NPUs"},
		{"bad parallelism", func(c *Config) { c.Parallelism = Parallelism(99) }, "Parallelism"},
		{"negative groups", func(c *Config) { c.NPUGroups = -1 }, "NPUGroups"},
		{"indivisible groups", func(c *Config) { c.NPUs = 10; c.NPUGroups = 3 }, "NPUGroups"},
		{"bad scheduling", func(c *Config) { c.Scheduling = SchedPolicy(99) }, "Scheduling"},
		{"bad kv", func(c *Config) { c.KVManage = KVPolicy(99) }, "KVManage"},
		{"bad pim", func(c *Config) { c.PIMType = PIMMode(99) }, "PIMType"},
		{"negative max batch", func(c *Config) { c.MaxBatch = -1 }, "MaxBatch"},
		{"negative batch delay", func(c *Config) { c.BatchDelay = -1 }, "BatchDelay"},
		{"negative page tokens", func(c *Config) { c.KVPageTokens = -16 }, "KVPageTokens"},
		{"negative pim pool", func(c *Config) { c.PIMPoolSize = -2 }, "PIMPoolSize"},
		{"negative sub batches", func(c *Config) { c.SubBatches = -2 }, "SubBatches"},
		{"sub batch without pim", func(c *Config) { c.SubBatches = 2; c.PIMType = PIMNone }, "SubBatches"},
		{"bad link bandwidth", func(c *Config) { c.Link.BandwidthBytes = -5 }, "Link"},
		{"bad npu frequency", func(c *Config) { c.NPU.FrequencyHz = -1 }, "NPU"},
		// A partially filled hardware block must fail loudly instead of
		// being silently replaced by the Table I defaults.
		{"partial npu block", func(c *Config) { c.NPU = config.NPUConfig{MemoryBytes: 8 << 30} }, "NPU"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mut(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("expected error")
			}
			ce, ok := AsConfigError(err)
			if !ok {
				t.Fatalf("not a ConfigError: %v", err)
			}
			if ce.Field != tc.field {
				t.Fatalf("field %q, want %q (%v)", ce.Field, tc.field, err)
			}
			// The constructor surfaces the same typed error.
			if _, nerr := NewFromConfig(cfg, UniformTrace(2, 16, 2)); nerr == nil {
				t.Fatal("constructor accepted invalid config")
			} else if _, ok := AsConfigError(nerr); !ok {
				t.Fatalf("constructor error not typed: %v", nerr)
			}
		})
	}

	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	// A minimal config relies on enum zero values being the defaults.
	minimal := Config{Model: "gpt2", NPUs: 4}
	if err := minimal.Validate(); err != nil {
		t.Fatalf("minimal config invalid: %v", err)
	}
	if _, err := NewFromConfig(minimal, UniformTrace(2, 16, 2)); err != nil {
		t.Fatalf("minimal config rejected: %v", err)
	}
}

// TestConfigErrorUnwrap: wrapped causes (the model registry's error)
// survive errors.Is/As chains.
func TestConfigErrorUnwrap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Model = "nope"
	err := cfg.Validate()
	var ce *ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("errors.As failed on %v", err)
	}
	if ce.Err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("cause not preserved: %+v", ce)
	}
}
